//! Space-filling-curve partitioning of tree nodes onto localities.
//!
//! "Octo-Tiger uses space-filling curves to partition the tree nodes into
//! processes" (§5). We order leaves by Morton key at their own level
//! (depth-first curve order) and split into contiguous, equally-weighted
//! chunks; internal nodes go where their first child lives, the root to
//! locality 0.

use crate::octree::{NodeId, Octree};

/// Assignment of every tree node to a locality.
#[derive(Debug, Clone)]
pub struct Partition {
    owner: Vec<usize>,
    localities: usize,
}

impl Partition {
    /// Locality owning `node`.
    pub fn owner(&self, node: NodeId) -> usize {
        self.owner[node]
    }

    /// Number of localities partitioned over.
    pub fn localities(&self) -> usize {
        self.localities
    }

    /// Ids of nodes owned by `loc`.
    pub fn nodes_of(&self, loc: usize) -> Vec<NodeId> {
        (0..self.owner.len()).filter(|&n| self.owner[n] == loc).collect()
    }
}

/// Sort key: depth-first position of a cell on the Morton curve.
/// Padding the key to a fixed depth makes keys of different levels
/// comparable (a parent sorts just before its first child).
fn curve_key(tree: &Octree, id: NodeId, max_level: u32) -> u64 {
    let n = tree.node(id);
    n.morton << (3 * (max_level - n.level))
}

/// Partition the tree's leaves over `localities` by contiguous SFC chunks
/// of (approximately) equal leaf count, then lift the assignment to
/// internal nodes.
pub fn partition(tree: &Octree, localities: usize) -> Partition {
    assert!(localities >= 1);
    let max_level = tree.nodes().iter().map(|n| n.level).max().unwrap_or(0);
    let mut leaves: Vec<NodeId> = tree.leaves().to_vec();
    leaves.sort_by_key(|&l| curve_key(tree, l, max_level));

    let mut owner = vec![usize::MAX; tree.len()];
    let per = leaves.len().div_ceil(localities).max(1);
    for (i, &l) in leaves.iter().enumerate() {
        owner[l] = (i / per).min(localities - 1);
    }
    // Internal nodes: owner of the first (curve-ordered) descendant leaf.
    // Process bottom-up: by construction children have larger ids than
    // parents, so a reverse sweep sees children first.
    for id in (0..tree.len()).rev() {
        if owner[id] == usize::MAX {
            let first = tree
                .node(id)
                .children
                .iter()
                .map(|&c| owner[c])
                .find(|&o| o != usize::MAX)
                .expect("internal node with unassigned children");
            owner[id] = first;
        }
    }
    Partition { owner, localities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::Octree;

    #[test]
    fn every_node_assigned_in_range() {
        let t = Octree::build(4);
        let p = partition(&t, 5);
        for id in 0..t.len() {
            assert!(p.owner(id) < 5, "node {id} unassigned");
        }
    }

    #[test]
    fn single_locality_owns_everything() {
        let t = Octree::build(3);
        let p = partition(&t, 1);
        assert!((0..t.len()).all(|n| p.owner(n) == 0));
    }

    #[test]
    fn leaves_are_balanced() {
        let t = Octree::build(4);
        let k = 7;
        let p = partition(&t, k);
        let mut counts = vec![0usize; k];
        for &l in t.leaves() {
            counts[p.owner(l)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "some locality owns no leaves: {counts:?}");
        assert!(max <= min * 2 + 8, "imbalanced: {counts:?}");
    }

    #[test]
    fn partition_covers_each_leaf_exactly_once() {
        let t = Octree::build(4);
        let k = 4;
        let p = partition(&t, k);
        let total: usize = (0..k)
            .map(|loc| p.nodes_of(loc).iter().filter(|&&n| t.node(n).is_leaf()).count())
            .sum();
        assert_eq!(total, t.leaves().len());
    }

    #[test]
    fn sfc_chunks_are_contiguous_on_curve() {
        let t = Octree::build(4);
        let p = partition(&t, 6);
        let max_level = t.nodes().iter().map(|n| n.level).max().unwrap();
        let mut leaves: Vec<_> = t.leaves().to_vec();
        leaves.sort_by_key(|&l| curve_key(&t, l, max_level));
        let owners: Vec<usize> = leaves.iter().map(|&l| p.owner(l)).collect();
        // Owner sequence along the curve must be non-decreasing.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]), "not contiguous: {owners:?}");
    }

    #[test]
    fn root_belongs_to_locality_zero() {
        let t = Octree::build(4);
        let p = partition(&t, 8);
        assert_eq!(p.owner(0), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn any_partition_is_total_and_balanced(
                level in 1u32..4,
                locs in 1usize..9,
            ) {
                let t = Octree::build(level);
                let p = partition(&t, locs);
                for id in 0..t.len() {
                    prop_assert!(p.owner(id) < locs);
                }
                let mut counts = vec![0usize; locs];
                for &l in t.leaves() {
                    counts[p.owner(l)] += 1;
                }
                prop_assert_eq!(counts.iter().sum::<usize>(), t.leaves().len());
            }
        }
    }
}
