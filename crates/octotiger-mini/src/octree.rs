//! The adaptive octree: refined around a binary-star shell.

/// Index of a tree node in the [`Octree`]'s node array.
pub type NodeId = usize;

/// One node of the octree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent node (self for the root).
    pub parent: NodeId,
    /// Children ids; empty for leaves.
    pub children: Vec<NodeId>,
    /// Refinement level (root = 0).
    pub level: u32,
    /// Cell center in the unit cube.
    pub center: [f64; 3],
    /// Cell half-width.
    pub half: f64,
    /// Morton key of the cell's min corner at `level` resolution.
    pub morton: u64,
}

impl Node {
    /// Whether the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An adaptive octree over the unit cube `[0,1]^3`.
///
/// Refinement mimics Octo-Tiger's star-merger grids: cells are refined up
/// to `max_level` when they intersect either of two spherical shells (the
/// surfaces of the binary's stars), so resolution concentrates where the
/// physics happens and the tree stays far smaller than a uniform
/// `8^max_level` grid.
#[derive(Debug)]
pub struct Octree {
    nodes: Vec<Node>,
    leaves: Vec<NodeId>,
}

/// The binary-star refinement predicate: distance of the cell center to
/// either star center lies within the star's shell, padded by the cell
/// diagonal.
fn refine(center: [f64; 3], half: f64) -> bool {
    const STARS: [([f64; 3], f64); 2] = [([0.35, 0.5, 0.5], 0.18), ([0.68, 0.52, 0.5], 0.12)];
    let diag = half * 3f64.sqrt();
    STARS.iter().any(|(c, r)| {
        let d =
            ((center[0] - c[0]).powi(2) + (center[1] - c[1]).powi(2) + (center[2] - c[2]).powi(2))
                .sqrt();
        (d - r).abs() <= diag
    })
}

impl Octree {
    /// Build the tree refined to `max_level`.
    pub fn build(max_level: u32) -> Octree {
        let mut nodes = vec![Node {
            parent: 0,
            children: Vec::new(),
            level: 0,
            center: [0.5, 0.5, 0.5],
            half: 0.5,
            morton: 0,
        }];
        let mut frontier = vec![0usize];
        for level in 0..max_level {
            let mut next = Vec::new();
            for &id in &frontier {
                let (center, half) = (nodes[id].center, nodes[id].half);
                if level > 0 && !refine(center, half) {
                    continue;
                }
                let qh = half / 2.0;
                for oct in 0..8u64 {
                    let dx = [(oct & 1) as f64, ((oct >> 1) & 1) as f64, ((oct >> 2) & 1) as f64];
                    let c = [
                        center[0] + (dx[0] * 2.0 - 1.0) * qh,
                        center[1] + (dx[1] * 2.0 - 1.0) * qh,
                        center[2] + (dx[2] * 2.0 - 1.0) * qh,
                    ];
                    let child = Node {
                        parent: id,
                        children: Vec::new(),
                        level: level + 1,
                        center: c,
                        half: qh,
                        morton: (nodes[id].morton << 3) | oct,
                    };
                    let cid = nodes.len();
                    nodes.push(child);
                    nodes[id].children.push(cid);
                    next.push(cid);
                }
            }
            frontier = next;
        }
        let leaves = (0..nodes.len()).filter(|&i| nodes[i].is_leaf()).collect();
        Octree { nodes, leaves }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Leaf ids in creation order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is only a root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Deterministic "mass" of a leaf (stands in for the density field).
    pub fn leaf_mass(&self, id: NodeId) -> f64 {
        let n = &self.nodes[id];
        1.0 + (n.morton % 97) as f64 / 97.0
    }

    /// Face-adjacent same-level leaf neighbors of `id` (up to 6). Two
    /// leaves are neighbors when they share a face: centers differ by one
    /// cell width along exactly one axis.
    pub fn leaf_neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let me = &self.nodes[id];
        let w = me.half * 2.0;
        let eps = me.half * 0.1;
        self.leaves
            .iter()
            .copied()
            .filter(|&o| o != id && self.nodes[o].level == me.level)
            .filter(|&o| {
                let c = &self.nodes[o].center;
                let d: Vec<f64> = (0..3).map(|k| (c[k] - me.center[k]).abs()).collect();
                let on_axis = d.iter().filter(|&&x| (x - w).abs() < eps).count();
                let zeros = d.iter().filter(|&&x| x < eps).count();
                on_axis == 1 && zeros == 2
            })
            .collect()
    }

    /// Exact sum of all leaf masses — the conserved quantity the FMM
    /// up-sweep must reproduce at the root.
    pub fn total_mass(&self) -> f64 {
        self.leaves.iter().map(|&l| self.leaf_mass(l)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_is_root_only() {
        let t = Octree::build(0);
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.leaves(), &[0]);
    }

    #[test]
    fn level_one_is_uniform() {
        let t = Octree::build(1);
        assert_eq!(t.len(), 9);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn adaptivity_keeps_tree_small() {
        let t = Octree::build(5);
        let uniform = (0..=5).map(|l| 8usize.pow(l)).sum::<usize>();
        assert!(t.len() < uniform / 4, "adaptive tree {} vs uniform {}", t.len(), uniform);
        assert!(t.leaves().len() > 500, "still resolves the shells: {}", t.leaves().len());
    }

    #[test]
    fn parents_and_children_are_consistent() {
        let t = Octree::build(3);
        for (id, n) in t.nodes().iter().enumerate() {
            for &c in &n.children {
                assert_eq!(t.node(c).parent, id);
                assert_eq!(t.node(c).level, n.level + 1);
                assert!(t.node(c).half < n.half);
            }
            if id != 0 {
                assert!(t.node(n.parent).children.contains(&id));
            }
        }
    }

    #[test]
    fn morton_keys_unique_per_level() {
        let t = Octree::build(4);
        let mut seen = std::collections::HashSet::new();
        for n in t.nodes() {
            assert!(seen.insert((n.level, n.morton)), "duplicate morton key");
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_bounded() {
        let t = Octree::build(3);
        for &l in t.leaves() {
            let nb = t.leaf_neighbors(l);
            assert!(nb.len() <= 6);
            for &o in &nb {
                assert!(t.leaf_neighbors(o).contains(&l), "neighbor relation must be symmetric");
            }
        }
    }

    #[test]
    fn mass_is_positive_and_deterministic() {
        let t1 = Octree::build(3);
        let t2 = Octree::build(3);
        assert_eq!(t1.total_mass(), t2.total_mass());
        assert!(t1.total_mass() > t1.leaves().len() as f64 * 0.99);
    }
}
