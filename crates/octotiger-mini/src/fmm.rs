//! The FMM-shaped step: M2M up-sweep, M2L neighbor exchange, L2L
//! down-sweep, and a completion reduction — all expressed as HPX actions.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use amt::action::{ActionId, ActionRegistry};
use amt::codec::{Reader, Writer};
use amt::Locality;
use bytes::Bytes;
use simcore::{Sim, SimTime};

use crate::octree::{NodeId, Octree};
use crate::sfc::Partition;

/// Virtual-time compute charges (ns) for the physics stand-ins.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    /// Computing a leaf's multipole from its density field.
    pub leaf_multipole: u64,
    /// Aggregating one internal node's multipole (M2M kernel).
    pub m2m: u64,
    /// Applying one received neighbor multipole (M2L kernel).
    pub m2l: u64,
    /// Final leaf update once expansions are complete.
    pub leaf_update: u64,
    /// Hydro ghost-zone payload exchanged between face-adjacent leaves,
    /// bytes. Octo-Tiger's hydro solver ships subgrid boundary slabs —
    /// this is the application's large-message (zero-copy) traffic.
    /// Zero disables the hydro phase.
    pub ghost_bytes: usize,
    /// Hydro update once all ghost zones arrived.
    pub hydro_update: u64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        // Chosen so that at small node counts compute dominates and at
        // larger node counts communication becomes the bottleneck —
        // the strong-scaling regime the paper studies. 12 KiB ghosts sit
        // above the 8 KiB zero-copy threshold, so the application mixes
        // small latency-bound FMM messages with zero-copy rendezvous
        // traffic — the "small and large messages" cocktail of §1.
        ComputeModel {
            leaf_multipole: 25_000,
            m2m: 4_000,
            m2l: 1_500,
            leaf_update: 12_000,
            ghost_bytes: 12 * 1024,
            hydro_update: 15_000,
        }
    }
}

/// Per-step, per-locality mutable state.
struct StepState {
    /// Internal node -> (children still missing, mass accum, weighted center).
    pending_children: HashMap<NodeId, (usize, f64, [f64; 3])>,
    /// Leaf -> neighbor multipoles still missing.
    pending_neighbors: HashMap<NodeId, usize>,
    /// Leaf -> hydro ghost zones still missing.
    pending_ghosts: HashMap<NodeId, usize>,
    /// Leaf -> received the L2L expansion.
    got_l2l: HashMap<NodeId, bool>,
    /// Leaves fully finished this step.
    leaves_done: usize,
}

/// Shared per-locality application state.
pub struct AppState {
    tree: Rc<Octree>,
    part: Rc<Partition>,
    neighbors: Rc<HashMap<NodeId, Vec<NodeId>>>,
    me: usize,
    my_leaves: Vec<NodeId>,
    step: StepState,
    /// Locality-0 only: localities that reported completion this step.
    locs_done: usize,
    /// Locality-0 only: sum of reported leaf-mass checksums this step.
    mass_checksum: f64,
    /// Completed step count (driver reads this).
    pub steps_completed: u32,
    /// Steps to run.
    pub steps_target: u32,
    /// Root multipole mass observed each step (invariant check).
    pub last_root_mass: f64,
    /// Checksum invariant validity across all steps so far.
    pub mass_ok: bool,
    compute: ComputeModel,
    /// When the final step completed (locality 0).
    pub finished_at: SimTime,
}

/// Action ids bundled for the step driver.
#[derive(Debug, Clone, Copy)]
pub struct Actions {
    /// Begin a step on a locality.
    pub step_start: ActionId,
    /// Child multipole contribution to a parent.
    pub m2m: ActionId,
    /// Neighbor multipole contribution to a leaf.
    pub m2l: ActionId,
    /// Local expansion pushed down to a node.
    pub l2l: ActionId,
    /// Hydro ghost-zone slab for a leaf.
    pub ghost: ActionId,
    /// A locality finished all its leaves (to locality 0).
    pub loc_done: ActionId,
}

fn encode_m2m(node: NodeId, mass: f64, center: [f64; 3]) -> Bytes {
    let mut w = Writer::with_capacity(40);
    w.put_u64(node as u64);
    w.put_f64(mass);
    for c in center {
        w.put_f64(c);
    }
    w.finish()
}

fn decode_m2m(b: &[u8]) -> (NodeId, f64, [f64; 3]) {
    let mut r = Reader::new(b);
    let node = r.get_u64() as usize;
    let mass = r.get_f64();
    let center = [r.get_f64(), r.get_f64(), r.get_f64()];
    (node, mass, center)
}

/// Invoke an action on `dest`: remote via a parcel, local as a fresh task
/// (HPX local action semantics — no network, but still a task spawn).
fn invoke(
    sim: &mut Sim,
    loc: &Rc<Locality>,
    core: usize,
    dest: usize,
    action: ActionId,
    args: Vec<Bytes>,
) -> SimTime {
    if dest == loc.id {
        let handler = loc.with_registry(|r| r.handler(action));
        let parcel = amt::Parcel::new(action, args);
        let dispatch = loc.cost.amt_action_dispatch;
        loc.spawn(
            sim,
            core,
            Box::new(move |sim, loc, core| {
                let t = sim.now() + dispatch;
                handler(sim, loc, core, parcel).max(t)
            }),
        )
    } else {
        loc.send_action(sim, core, dest, action, args)
    }
}

impl AppState {
    fn fresh_step_state(&self) -> StepState {
        let mut pending_children = HashMap::new();
        for (id, n) in self.tree.nodes().iter().enumerate() {
            if !n.is_leaf() && self.part.owner(id) == self.me {
                pending_children.insert(id, (n.children.len(), 0.0, [0.0; 3]));
            }
        }
        let mut pending_neighbors = HashMap::new();
        let mut pending_ghosts = HashMap::new();
        let mut got_l2l = HashMap::new();
        let ghosts_on = self.compute.ghost_bytes > 0;
        for &l in &self.my_leaves {
            pending_neighbors.insert(l, self.neighbors[&l].len());
            pending_ghosts.insert(l, if ghosts_on { self.neighbors[&l].len() } else { 0 });
            got_l2l.insert(l, false);
        }
        StepState { pending_children, pending_neighbors, pending_ghosts, got_l2l, leaves_done: 0 }
    }
}

/// Register the FMM actions over `states` (one [`AppState`] per locality,
/// indexed by locality id). Returns the action handles.
pub fn register_actions(
    registry: &mut ActionRegistry,
    states: Rc<Vec<Rc<RefCell<AppState>>>>,
    actions_out: Rc<RefCell<Option<Actions>>>,
) -> Actions {
    let st = states.clone();
    let step_start = registry.register("octo.step_start", move |sim, loc, core, _p| {
        // NOTE: per-step counters were already reset when this locality
        // finished its previous step (see `finish_leaf`) — resetting here
        // would race against early arrivals from faster localities.
        let state = st[loc.id].clone();
        let (leaves, leaf_cost) = {
            let s = state.borrow();
            (s.my_leaves.clone(), s.compute.leaf_multipole)
        };
        // One task per owned leaf: compute the multipole, then send M2M
        // to the parent and M2L to each neighbor.
        let mut t = sim.now();
        for leaf in leaves {
            let state = state.clone();
            t = loc.spawn(
                sim,
                core,
                Box::new(move |sim, loc, core| {
                    let mut t = sim.now() + leaf_cost;
                    let (tree, part, nbrs, ghost_bytes, acts) = {
                        let s = state.borrow();
                        (
                            s.tree.clone(),
                            s.part.clone(),
                            s.neighbors[&leaf].clone(),
                            s.compute.ghost_bytes,
                            ACTIONS.with(|a| a.borrow().expect("actions registered")),
                        )
                    };
                    let mass = tree.leaf_mass(leaf);
                    let center = tree.node(leaf).center;
                    let parent = tree.node(leaf).parent;
                    let payload = encode_m2m(parent, mass, center);
                    t = invoke(sim, loc, core, part.owner(parent), acts.m2m, vec![payload]).max(t);
                    for nb in nbrs {
                        let payload = encode_m2m(nb, mass, center);
                        t = invoke(sim, loc, core, part.owner(nb), acts.m2l, vec![payload]).max(t);
                        if ghost_bytes > 0 {
                            // Hydro ghost slab: the leaf's boundary data
                            // for this neighbor (deterministic fill so
                            // receivers can sanity-check it).
                            let mut slab = vec![(leaf % 251) as u8; ghost_bytes];
                            slab[..8].copy_from_slice(&(nb as u64).to_le_bytes());
                            t = invoke(
                                sim,
                                loc,
                                core,
                                part.owner(nb),
                                acts.ghost,
                                vec![Bytes::from(slab)],
                            )
                            .max(t);
                        }
                    }
                    t
                }),
            );
        }
        t
    });

    let st = states.clone();
    let m2m = registry.register("octo.m2m", move |sim, loc, core, p| {
        let state = st[loc.id].clone();
        let (node, mass, center) = decode_m2m(&p.args[0]);
        let mut t = sim.now();
        // Accumulate; if the node's multipole is now complete, pass it up
        // (or start the down-sweep at the root).
        let complete = {
            let mut s = state.borrow_mut();
            t += s.compute.m2m;
            let e = s
                .step
                .pending_children
                .get_mut(&node)
                .unwrap_or_else(|| panic!("m2m for non-owned node {node}"));
            e.0 -= 1;
            e.1 += mass;
            for (acc, c) in e.2.iter_mut().zip(center.iter()) {
                *acc += mass * c;
            }
            if e.0 == 0 {
                Some((e.1, e.2))
            } else {
                None
            }
        };
        if let Some((mass, wc)) = complete {
            let (tree, part) = {
                let s = state.borrow();
                (s.tree.clone(), s.part.clone())
            };
            let center = [wc[0] / mass, wc[1] / mass, wc[2] / mass];
            if node == 0 {
                // Root reached: record the invariant and broadcast L2L.
                let (l2l, children) = {
                    let mut s = state.borrow_mut();
                    s.last_root_mass = mass;
                    let expected = tree.total_mass();
                    if (mass - expected).abs() > 1e-6 * expected {
                        s.mass_ok = false;
                    }
                    (
                        ACTIONS.with(|a| a.borrow().expect("actions").l2l),
                        tree.node(0).children.clone(),
                    )
                };
                for c in children {
                    let payload = encode_m2m(c, mass, center);
                    t = invoke(sim, loc, core, part.owner(c), l2l, vec![payload]).max(t);
                }
            } else {
                let parent = tree.node(node).parent;
                let m2m_id = ACTIONS.with(|a| a.borrow().expect("actions").m2m);
                let payload = encode_m2m(parent, mass, center);
                t = invoke(sim, loc, core, part.owner(parent), m2m_id, vec![payload]).max(t);
            }
        }
        t
    });

    let st = states.clone();
    let m2l = registry.register("octo.m2l", move |sim, loc, core, p| {
        let state = st[loc.id].clone();
        let (leaf, _mass, _center) = decode_m2m(&p.args[0]);
        let mut t = sim.now();
        let ready = {
            let mut s = state.borrow_mut();
            t += s.compute.m2l;
            let e = s
                .step
                .pending_neighbors
                .get_mut(&leaf)
                .unwrap_or_else(|| panic!("m2l for non-owned leaf {leaf}"));
            *e -= 1;
            *e == 0 && s.step.got_l2l[&leaf] && s.step.pending_ghosts[&leaf] == 0
        };
        if ready {
            t = finish_leaf(sim, loc, core, &state, leaf, t);
        }
        t
    });

    let st = states.clone();
    let ghost = registry.register("octo.ghost", move |sim, loc, core, p| {
        let state = st[loc.id].clone();
        let leaf = u64::from_le_bytes(p.args[0][..8].try_into().expect("leaf id")) as usize;
        let mut t = sim.now();
        let ready = {
            let mut s = state.borrow_mut();
            t += s.compute.m2l; // unpack the slab into the subgrid halo
            let e = s
                .step
                .pending_ghosts
                .get_mut(&leaf)
                .unwrap_or_else(|| panic!("ghost for non-owned leaf {leaf}"));
            *e -= 1;
            *e == 0 && s.step.pending_neighbors[&leaf] == 0 && s.step.got_l2l[&leaf]
        };
        if ready {
            t = finish_leaf(sim, loc, core, &state, leaf, t);
        }
        t
    });

    let st = states.clone();
    let l2l = registry.register("octo.l2l", move |sim, loc, core, p| {
        let state = st[loc.id].clone();
        let (node, mass, center) = decode_m2m(&p.args[0]);
        let mut t = sim.now();
        let tree = state.borrow().tree.clone();
        if tree.node(node).is_leaf() {
            let ready = {
                let mut s = state.borrow_mut();
                *s.step.got_l2l.get_mut(&node).expect("l2l for non-owned leaf") = true;
                s.step.pending_neighbors[&node] == 0 && s.step.pending_ghosts[&node] == 0
            };
            if ready {
                t = finish_leaf(sim, loc, core, &state, node, t);
            }
        } else {
            // Forward down the tree.
            let (part, children, l2l_id) = {
                let s = state.borrow();
                (
                    s.part.clone(),
                    tree.node(node).children.clone(),
                    ACTIONS.with(|a| a.borrow().expect("actions").l2l),
                )
            };
            t += state.borrow().compute.m2m;
            for c in children {
                let payload = encode_m2m(c, mass, center);
                t = invoke(sim, loc, core, part.owner(c), l2l_id, vec![payload]).max(t);
            }
        }
        t
    });

    let st = states.clone();
    let loc_done = registry.register("octo.loc_done", move |sim, loc, core, p| {
        assert_eq!(loc.id, 0, "completion reduction targets locality 0");
        let state = st[0].clone();
        let mut r = Reader::new(&p.args[0]);
        let checksum = r.get_f64();
        let mut t = sim.now() + 200;
        let advance = {
            let mut s = state.borrow_mut();
            s.locs_done += 1;
            s.mass_checksum += checksum;
            if s.locs_done == s.part.localities() {
                let expected = s.tree.total_mass();
                if (s.mass_checksum - expected).abs() > 1e-6 * expected {
                    s.mass_ok = false;
                }
                s.locs_done = 0;
                s.mass_checksum = 0.0;
                s.steps_completed += 1;
                Some(s.steps_completed < s.steps_target)
            } else {
                None
            }
        };
        match advance {
            Some(true) => {
                // Kick the next step everywhere.
                let (locs, step_start) = {
                    let s = state.borrow();
                    (s.part.localities(), ACTIONS.with(|a| a.borrow().expect("actions").step_start))
                };
                for dest in 0..locs {
                    t = invoke(sim, loc, core, dest, step_start, vec![Bytes::new()]).max(t);
                }
            }
            Some(false) => {
                state.borrow_mut().finished_at = t;
            }
            None => {}
        }
        t
    });

    let actions = Actions { step_start, m2m, m2l, ghost, l2l, loc_done };
    *actions_out.borrow_mut() = Some(actions);
    ACTIONS.with(|a| *a.borrow_mut() = Some(actions));
    actions
}

thread_local! {
    /// Action-id registry shared by the closures above (identical on
    /// every locality, like HPX's globally-agreed action ids).
    static ACTIONS: RefCell<Option<Actions>> = const { RefCell::new(None) };
}

/// Install the action-id bundle into this thread's registry slot.
/// [`register_actions`] does this on its own thread; the sharded driver
/// calls it from every lane's `thread_prep` hook so the closures above
/// resolve action ids on whatever engine worker thread hosts the lane.
/// Idempotent: ids are agreed globally (same registration order on every
/// lane), so overwriting with an equal value is harmless.
pub fn install_actions(actions: Actions) {
    ACTIONS.with(|a| *a.borrow_mut() = Some(actions));
}

/// Final leaf update and completion accounting.
fn finish_leaf(
    sim: &mut Sim,
    loc: &Rc<Locality>,
    core: usize,
    state: &Rc<RefCell<AppState>>,
    _leaf: NodeId,
    mut t: SimTime,
) -> SimTime {
    let all_done = {
        let mut s = state.borrow_mut();
        t += s.compute.leaf_update;
        if s.compute.ghost_bytes > 0 {
            t += s.compute.hydro_update;
        }
        s.step.leaves_done += 1;
        s.step.leaves_done == s.my_leaves_len()
    };
    if all_done {
        let (checksum, loc_done) = {
            let mut s = state.borrow_mut();
            // This locality's step is quiescent: everything it will ever
            // receive for this step has arrived (the L2L gate guarantees
            // all M2M/M2L are consumed before any leaf finishes). Reset
            // NOW so early arrivals for the next step land in fresh
            // counters instead of racing the step_start broadcast.
            s.step = s.fresh_step_state();
            let sum: f64 = s.my_leaves.iter().map(|&l| s.tree.leaf_mass(l)).sum();
            (sum, ACTIONS.with(|a| a.borrow().expect("actions").loc_done))
        };
        let mut w = Writer::with_capacity(8);
        w.put_f64(checksum);
        t = invoke(sim, loc, core, 0, loc_done, vec![w.finish()]).max(t);
    }
    t
}

impl AppState {
    fn my_leaves_len(&self) -> usize {
        self.my_leaves.len()
    }

    /// Leaves in the whole tree (workload size indicator).
    pub fn tree_leaves(&self) -> usize {
        self.tree.leaves().len()
    }

    /// Diagnostic snapshot of the current step's progress.
    pub fn debug_summary(&self) -> String {
        let pend_children: usize = self.step.pending_children.values().filter(|e| e.0 > 0).count();
        let pend_nbr: usize = self.step.pending_neighbors.values().filter(|&&n| n > 0).count();
        let pend_ghost: usize = self.step.pending_ghosts.values().filter(|&&n| n > 0).count();
        let _ = pend_ghost;
        let missing_l2l = self.step.got_l2l.values().filter(|&&g| !g).count();
        format!(
            "leaves={} done={} pend_internal={} pend_nbr={} missing_l2l={} locs_done={}",
            self.my_leaves.len(),
            self.step.leaves_done,
            pend_children,
            pend_nbr,
            missing_l2l,
            self.locs_done
        )
    }

    /// Build the per-locality states for a world of `localities`.
    pub fn build_all(
        tree: Rc<Octree>,
        part: Rc<Partition>,
        localities: usize,
        steps: u32,
        compute: ComputeModel,
    ) -> Rc<Vec<Rc<RefCell<AppState>>>> {
        let mut neighbors = HashMap::new();
        for &l in tree.leaves() {
            neighbors.insert(l, tree.leaf_neighbors(l));
        }
        let neighbors = Rc::new(neighbors);
        let states: Vec<Rc<RefCell<AppState>>> = (0..localities)
            .map(|me| {
                let my_leaves: Vec<NodeId> =
                    tree.leaves().iter().copied().filter(|&l| part.owner(l) == me).collect();
                let mut s = AppState {
                    tree: tree.clone(),
                    part: part.clone(),
                    neighbors: neighbors.clone(),
                    me,
                    my_leaves,
                    step: StepState {
                        pending_children: HashMap::new(),
                        pending_neighbors: HashMap::new(),
                        pending_ghosts: HashMap::new(),
                        got_l2l: HashMap::new(),
                        leaves_done: 0,
                    },
                    locs_done: 0,
                    mass_checksum: 0.0,
                    steps_completed: 0,
                    steps_target: steps,
                    last_root_mass: 0.0,
                    mass_ok: true,
                    compute: compute.clone(),
                    finished_at: SimTime::ZERO,
                };
                s.step = s.fresh_step_state();
                Rc::new(RefCell::new(s))
            })
            .collect();
        Rc::new(states)
    }
}
