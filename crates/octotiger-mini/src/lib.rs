//! # octotiger-mini — a proxy for the Octo-Tiger application benchmark
//!
//! Octo-Tiger (§5 of the paper) is an astrophysics application that
//! simulates binary star mergers with the fast multipole method on
//! adaptive octrees, built on HPX actions. The paper uses it for
//! strong-scaling runs (level 6 on SDSC Expanse, level 5 on Rostam, 5
//! steps) where inter-process communication is a significant bottleneck,
//! and reports *step count per second* per parcelport (Figs. 10, 11).
//!
//! This crate reproduces the communication skeleton:
//!
//! * an **adaptive octree** refined around a binary-star shell
//!   ([`octree`]), partitioned across localities by a Morton space-filling
//!   curve ([`sfc`]) — like Octo-Tiger's SFC partitioning;
//! * an **FMM-shaped step** ([`fmm`]): leaves compute multipoles (charged
//!   compute), M2M aggregation up the tree (remote parents receive child
//!   multipoles as actions), M2L neighbor exchange between face-adjacent
//!   leaves, L2L broadcast back down, and a completion reduction to
//!   locality 0 — fan-in, point-to-point and fan-out traffic of small
//!   messages, exactly the latency-bound mix the microbenchmarks stress;
//! * a **driver** ([`driver`]) running N steps over any parcelport
//!   configuration and reporting steps/second.
//!
//! The physics is replaced by deterministic arithmetic on real payloads
//! (multipole = mass + center of mass), which gives a cross-parcelport
//! correctness invariant: the root multipole mass must equal the exact
//! sum of all leaf masses every step, regardless of backend, worker
//! count, or timing.

pub mod driver;
pub mod fmm;
pub mod octree;
pub mod sfc;

pub use driver::{run_octotiger, run_octotiger_sharded, OctoParams, OctoResult};
pub use octree::{NodeId, Octree};
pub use sfc::partition;
