//! The benchmark driver: run N steps over any parcelport configuration.

use std::cell::RefCell;
use std::rc::Rc;

use amt::action::ActionRegistry;
use bytes::Bytes;
use netsim::WireModel;
use parcelport::{build_world, PpConfig, WorldConfig};
use simcore::SimTime;

use crate::fmm::{register_actions, AppState, ComputeModel};
use crate::octree::Octree;
use crate::sfc::partition;

/// Parameters of an Octo-Tiger-mini run.
#[derive(Debug, Clone)]
pub struct OctoParams {
    /// Parcelport configuration.
    pub config: PpConfig,
    /// Number of localities (compute nodes).
    pub localities: usize,
    /// Cores per locality.
    pub cores: usize,
    /// Wire model (platform preset).
    pub wire: WireModel,
    /// Maximum octree refinement level (paper: 6 on Expanse, 5 on Rostam).
    pub level: u32,
    /// Steps to run (paper: 5).
    pub steps: u32,
    /// Compute-kernel cost model.
    pub compute: ComputeModel,
    /// RNG seed.
    pub seed: u64,
    /// Software cost-model override (what-if re-runs); `None` = defaults.
    pub cost: Option<simcore::CostModel>,
}

impl OctoParams {
    /// The paper's SDSC Expanse setup (level 6, 5 steps), with cores
    /// scaled 128 -> 32 per the DESIGN.md scale-down note. The tree level
    /// is scaled to 5 to keep the simulation laptop-sized; the
    /// communication-to-compute balance is preserved by `ComputeModel`.
    pub fn expanse(config: PpConfig, localities: usize) -> Self {
        OctoParams {
            config,
            localities,
            cores: 32,
            wire: WireModel::expanse(),
            level: 5,
            steps: 5,
            compute: ComputeModel::default(),
            seed: 42,
            cost: None,
        }
    }

    /// The paper's Rostam setup (level 5 -> scaled 4, 5 steps, 40 -> 10
    /// cores, FDR InfiniBand).
    pub fn rostam(config: PpConfig, localities: usize) -> Self {
        OctoParams {
            config,
            localities,
            cores: 10,
            wire: WireModel::rostam(),
            level: 4,
            steps: 5,
            compute: ComputeModel::default(),
            seed: 42,
            cost: None,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct OctoResult {
    /// Steps per second of virtual time — the paper's y-axis.
    pub steps_per_sec: f64,
    /// Total virtual time.
    pub total: SimTime,
    /// Whether all steps completed before the safety deadline.
    pub completed: bool,
    /// Whether the root-multipole mass invariant held every step.
    pub mass_ok: bool,
    /// Leaves in the tree (workload size indicator).
    pub leaves: usize,
    /// Engine events executed during the run — paired with wall-clock
    /// measurement by `engine_throughput` for the perf trajectory.
    pub events_executed: u64,
}

/// Run Octo-Tiger-mini once.
pub fn run_octotiger(p: &OctoParams) -> OctoResult {
    let tree = Rc::new(Octree::build(p.level));
    let part = Rc::new(partition(&tree, p.localities));
    let states = AppState::build_all(tree.clone(), part, p.localities, p.steps, p.compute.clone());

    let mut registry = ActionRegistry::new();
    let actions_out = Rc::new(RefCell::new(None));
    let actions = register_actions(&mut registry, states.clone(), actions_out);

    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.localities = p.localities;
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.cost = p.cost.clone();
    let mut world = build_world(&wcfg, registry);

    // Kick step 0 on every locality from locality 0.
    for dest in 0..p.localities {
        let loc0 = world.locality(0).clone();
        let start = actions.step_start;
        if dest == 0 {
            loc0.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    let handler = loc.with_registry(|r| r.handler(start));
                    handler(sim, loc, core, amt::Parcel::empty(start))
                }),
            );
        } else {
            loc0.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, dest, start, vec![Bytes::new()])
                }),
            );
        }
    }

    let st0 = states[0].clone();
    let target = p.steps;
    let completed =
        world.run_while(600_000_000_000, move |_| st0.borrow().steps_completed < target);

    if std::env::var("OCTO_DUMP").is_ok() {
        eprintln!("--- octo stats ({}) ---", p.config);
        eprintln!("{}", world.sim.stats);
    }
    let total = states[0].borrow().finished_at;
    let total = if total == SimTime::ZERO { world.sim.now() } else { total };
    let steps_per_sec = if completed { p.steps as f64 / total.as_secs_f64() } else { 0.0 };
    let mass_ok = states.iter().all(|s| s.borrow().mass_ok);
    OctoResult {
        steps_per_sec,
        total,
        completed,
        mass_ok,
        leaves: tree.leaves().len(),
        events_executed: world.sim.events_executed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: &str, localities: usize, level: u32) -> OctoResult {
        let mut p = OctoParams::expanse(config.parse().unwrap(), localities);
        p.level = level;
        p.cores = 6;
        p.steps = 2;
        run_octotiger(&p)
    }

    #[test]
    fn single_locality_runs() {
        let r = quick("lci_psr_cq_pin_i", 1, 3);
        assert!(r.completed, "{r:?}");
        assert!(r.mass_ok, "mass invariant violated");
        assert!(r.steps_per_sec > 0.0);
    }

    #[test]
    fn two_localities_lci() {
        let r = quick("lci_psr_cq_pin_i", 2, 3);
        assert!(r.completed, "{r:?}");
        assert!(r.mass_ok);
    }

    #[test]
    fn four_localities_mpi() {
        let r = quick("mpi_i", 4, 3);
        assert!(r.completed, "{r:?}");
        assert!(r.mass_ok);
    }

    #[test]
    fn results_deterministic_across_backends() {
        // The mass invariant (physics) must hold identically on every
        // parcelport — communication must not change results.
        for cfg in ["lci_psr_cq_pin_i", "lci_sr_sy_mt_i", "mpi", "mpi_i"] {
            let r = quick(cfg, 3, 3);
            assert!(r.completed, "{cfg}: {r:?}");
            assert!(r.mass_ok, "{cfg}: mass invariant violated");
        }
    }
}
