//! The benchmark driver: run N steps over any parcelport configuration.

use std::cell::RefCell;
use std::rc::Rc;

use amt::action::ActionRegistry;
use bytes::Bytes;
use netsim::WireModel;
use parcelport::{build_world, PpConfig, WorldConfig};
use simcore::SimTime;

use crate::fmm::{install_actions, register_actions, AppState, ComputeModel};
use crate::octree::Octree;
use crate::sfc::partition;

/// The per-lane application state the sharded driver stashes in each
/// lane's [`parcelport::LaneSetup::app`] slot.
type LaneStates = Rc<Vec<Rc<RefCell<AppState>>>>;

/// Parameters of an Octo-Tiger-mini run.
#[derive(Debug, Clone)]
pub struct OctoParams {
    /// Parcelport configuration.
    pub config: PpConfig,
    /// Number of localities (compute nodes).
    pub localities: usize,
    /// Cores per locality.
    pub cores: usize,
    /// Wire model (platform preset).
    pub wire: WireModel,
    /// Maximum octree refinement level (paper: 6 on Expanse, 5 on Rostam).
    pub level: u32,
    /// Steps to run (paper: 5).
    pub steps: u32,
    /// Compute-kernel cost model.
    pub compute: ComputeModel,
    /// RNG seed.
    pub seed: u64,
    /// Software cost-model override (what-if re-runs); `None` = defaults.
    pub cost: Option<simcore::CostModel>,
}

impl OctoParams {
    /// The paper's SDSC Expanse setup (level 6, 5 steps), with cores
    /// scaled 128 -> 32 per the DESIGN.md scale-down note. The tree level
    /// is scaled to 5 to keep the simulation laptop-sized; the
    /// communication-to-compute balance is preserved by `ComputeModel`.
    pub fn expanse(config: PpConfig, localities: usize) -> Self {
        OctoParams {
            config,
            localities,
            cores: 32,
            wire: WireModel::expanse(),
            level: 5,
            steps: 5,
            compute: ComputeModel::default(),
            seed: 42,
            cost: None,
        }
    }

    /// The paper's Rostam setup (level 5 -> scaled 4, 5 steps, 40 -> 10
    /// cores, FDR InfiniBand).
    pub fn rostam(config: PpConfig, localities: usize) -> Self {
        OctoParams {
            config,
            localities,
            cores: 10,
            wire: WireModel::rostam(),
            level: 4,
            steps: 5,
            compute: ComputeModel::default(),
            seed: 42,
            cost: None,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct OctoResult {
    /// Steps per second of virtual time — the paper's y-axis.
    pub steps_per_sec: f64,
    /// Total virtual time.
    pub total: SimTime,
    /// Whether all steps completed before the safety deadline.
    pub completed: bool,
    /// Whether the root-multipole mass invariant held every step.
    pub mass_ok: bool,
    /// Leaves in the tree (workload size indicator).
    pub leaves: usize,
    /// Engine events executed during the run — paired with wall-clock
    /// measurement by `engine_throughput` for the perf trajectory.
    pub events_executed: u64,
}

/// Run Octo-Tiger-mini once.
pub fn run_octotiger(p: &OctoParams) -> OctoResult {
    let tree = Rc::new(Octree::build(p.level));
    let part = Rc::new(partition(&tree, p.localities));
    let states = AppState::build_all(tree.clone(), part, p.localities, p.steps, p.compute.clone());

    let mut registry = ActionRegistry::new();
    let actions_out = Rc::new(RefCell::new(None));
    let actions = register_actions(&mut registry, states.clone(), actions_out);

    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.localities = p.localities;
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.cost = p.cost.clone();
    let mut world = build_world(&wcfg, registry);

    // Kick step 0 on every locality from locality 0.
    for dest in 0..p.localities {
        let loc0 = world.locality(0).clone();
        let start = actions.step_start;
        if dest == 0 {
            loc0.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    let handler = loc.with_registry(|r| r.handler(start));
                    handler(sim, loc, core, amt::Parcel::empty(start))
                }),
            );
        } else {
            loc0.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, dest, start, vec![Bytes::new()])
                }),
            );
        }
    }

    let st0 = states[0].clone();
    let target = p.steps;
    let completed =
        world.run_while(600_000_000_000, move |_| st0.borrow().steps_completed < target);

    if std::env::var("OCTO_DUMP").is_ok() {
        eprintln!("--- octo stats ({}) ---", p.config);
        eprintln!("{}", world.sim.stats);
    }
    let total = states[0].borrow().finished_at;
    let total = if total == SimTime::ZERO { world.sim.now() } else { total };
    let steps_per_sec = if completed { p.steps as f64 / total.as_secs_f64() } else { 0.0 };
    let mass_ok = states.iter().all(|s| s.borrow().mass_ok);
    OctoResult {
        steps_per_sec,
        total,
        completed,
        mass_ok,
        leaves: tree.leaves().len(),
        events_executed: world.sim.events_executed(),
    }
}

/// Run Octo-Tiger-mini on the sharded engine: one lane per locality over
/// `shards` engine shards (`mode` pins the executor, `None` lets the
/// engine pick). Identical results to [`run_octotiger`]'s workload by
/// the determinism contract: the tree, SFC partition, and action
/// registry are pure functions of `p`, so every lane rebuilds its own
/// replica and the globally-agreed action ids line up by registration
/// order — exactly how HPX localities agree on action ids without
/// exchanging them.
pub fn run_octotiger_sharded(
    p: &OctoParams,
    shards: usize,
    mode: Option<simcore::shard::RunMode>,
) -> OctoResult {
    let mut wcfg = WorldConfig::two_nodes(p.config, p.cores);
    wcfg.localities = p.localities;
    wcfg.wire = p.wire.clone();
    wcfg.seed = p.seed;
    wcfg.cost = p.cost.clone();

    let params = p.clone();
    let localities = p.localities;
    let mut world = parcelport::build_sharded_world(
        &wcfg,
        shards,
        move |_rank| {
            // Deterministic replication: every lane derives the same tree,
            // partition, and registration order from the parameters.
            let tree = Rc::new(Octree::build(params.level));
            let part = Rc::new(partition(&tree, params.localities));
            let states = AppState::build_all(
                tree,
                part,
                params.localities,
                params.steps,
                params.compute.clone(),
            );
            let mut registry = ActionRegistry::new();
            let actions_out = Rc::new(RefCell::new(None));
            let actions = register_actions(&mut registry, states.clone(), actions_out);
            parcelport::LaneSetup {
                registry,
                app: Some(Box::new(states)),
                thread_prep: Some(Box::new(move || install_actions(actions))),
            }
        },
        move |rank, sim, loc| {
            // Same kick as the single-heap driver: locality 0 starts step
            // 0 everywhere.
            if rank != 0 {
                return;
            }
            let start = loc.with_registry(|r| r.id_of("octo.step_start").unwrap());
            for dest in 0..localities {
                if dest == 0 {
                    loc.spawn(
                        sim,
                        0,
                        Box::new(move |sim, loc, core| {
                            let handler = loc.with_registry(|r| r.handler(start));
                            handler(sim, loc, core, amt::Parcel::empty(start))
                        }),
                    );
                } else {
                    loc.spawn(
                        sim,
                        0,
                        Box::new(move |sim, loc, core| {
                            loc.send_action(sim, core, dest, start, vec![Bytes::new()])
                        }),
                    );
                }
            }
        },
    );
    world.run(mode);

    // Step completion and finish time live on locality 0; the mass
    // invariant is tracked by each rank on its own lane.
    let st0 = world.app::<LaneStates>(0).expect("lane 0 app state")[0].borrow();
    let completed = st0.steps_completed >= p.steps;
    let total = if st0.finished_at == SimTime::ZERO { world.now() } else { st0.finished_at };
    let steps_per_sec = if completed { p.steps as f64 / total.as_secs_f64() } else { 0.0 };
    let mass_ok = (0..p.localities)
        .all(|rank| world.app::<LaneStates>(rank).expect("lane app state")[rank].borrow().mass_ok);
    let leaves = st0.tree_leaves();
    let events_executed = world.events_executed();
    drop(st0);
    OctoResult { steps_per_sec, total, completed, mass_ok, leaves, events_executed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: &str, localities: usize, level: u32) -> OctoResult {
        let mut p = OctoParams::expanse(config.parse().unwrap(), localities);
        p.level = level;
        p.cores = 6;
        p.steps = 2;
        run_octotiger(&p)
    }

    #[test]
    fn single_locality_runs() {
        let r = quick("lci_psr_cq_pin_i", 1, 3);
        assert!(r.completed, "{r:?}");
        assert!(r.mass_ok, "mass invariant violated");
        assert!(r.steps_per_sec > 0.0);
    }

    #[test]
    fn two_localities_lci() {
        let r = quick("lci_psr_cq_pin_i", 2, 3);
        assert!(r.completed, "{r:?}");
        assert!(r.mass_ok);
    }

    #[test]
    fn four_localities_mpi() {
        let r = quick("mpi_i", 4, 3);
        assert!(r.completed, "{r:?}");
        assert!(r.mass_ok);
    }

    fn quick_sharded(
        config: &str,
        localities: usize,
        level: u32,
        shards: usize,
        mode: simcore::shard::RunMode,
    ) -> OctoResult {
        let mut p = OctoParams::expanse(config.parse().unwrap(), localities);
        p.level = level;
        p.cores = 6;
        p.steps = 2;
        run_octotiger_sharded(&p, shards, Some(mode))
    }

    #[test]
    fn sharded_matches_single_heap_results() {
        use simcore::shard::RunMode;
        let legacy = quick("lci_psr_cq_pin_i", 4, 3);
        assert!(legacy.completed);
        for (shards, mode) in
            [(1, RunMode::Sequential), (2, RunMode::Sequential), (4, RunMode::Threaded)]
        {
            let r = quick_sharded("lci_psr_cq_pin_i", 4, 3, shards, mode);
            assert!(r.completed, "shards={shards} {mode:?}: {r:?}");
            assert!(r.mass_ok, "shards={shards} {mode:?}: mass invariant violated");
            assert_eq!(r.leaves, legacy.leaves);
            assert_eq!(
                r.total, legacy.total,
                "shards={shards} {mode:?}: virtual end time diverged from the single-heap world"
            );
        }
    }

    #[test]
    fn results_deterministic_across_backends() {
        // The mass invariant (physics) must hold identically on every
        // parcelport — communication must not change results.
        for cfg in ["lci_psr_cq_pin_i", "lci_sr_sy_mt_i", "mpi", "mpi_i"] {
            let r = quick(cfg, 3, 3);
            assert!(r.completed, "{cfg}: {r:?}");
            assert!(r.mass_ok, "{cfg}: mass invariant violated");
        }
    }
}
