//! The header message: metadata + piggybacking, and message-part planning
//! shared by the MPI and LCI parcelports.
//!
//! §3.1: "The header message contains metadata about the HPX message such
//! as the tag it should use for the follow-up sends and receives, the
//! size of the non-zero-copy chunk, and the existence and size of the
//! transmission chunk. ... If the transmission message and the
//! non-zero-copy chunk message are small enough, they will piggyback on
//! the header message. The maximum size of the header message is set to
//! be the zero-copy serialization threshold."

use amt::codec::{Reader, Writer};
use amt::serialize::HpxMessage;
use bytes::Bytes;

/// Maximum header-message size: the HPX zero-copy serialization threshold
/// default (8192 bytes).
pub const MAX_HEADER_SIZE: usize = 8192;

/// Fixed header size of the *original* MPI parcelport (stack-allocated).
pub const ORIGINAL_HEADER_SIZE: usize = 512;

const FLAG_PIGGY_NZC: u8 = 1;
const FLAG_PIGGY_TRANS: u8 = 2;
const FLAG_HAS_TRANS: u8 = 4;

/// Fixed header fields: tag(8) + zc_count(4) + flags(1) + nzc_size(4) +
/// trans_size(4).
const FIXED_FIELDS: usize = 21;

/// Identifies one follow-up message of an HPX message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartId {
    /// The non-zero-copy chunk (when not piggybacked).
    Nzc,
    /// The transmission chunk (when present and not piggybacked).
    Trans,
    /// Zero-copy chunk `i`.
    Zc(u32),
}

impl PartId {
    /// Tag offset of this part relative to the connection's base tag.
    /// (The MPI parcelport uses one tag for everything; the LCI parcelport
    /// uses `tag_base + offset` because LCI does not guarantee in-order
    /// delivery.)
    pub fn tag_offset(&self) -> u64 {
        match self {
            PartId::Nzc => 0,
            PartId::Trans => 1,
            PartId::Zc(i) => 2 + u64::from(*i),
        }
    }
}

/// A planned outgoing HPX message: the encoded header plus the follow-up
/// parts in send order.
#[derive(Debug)]
pub struct MessagePlan {
    /// Encoded header, including piggybacked chunks.
    pub header: Bytes,
    /// Follow-up messages in send order.
    pub parts: Vec<(PartId, Bytes)>,
}

impl MessagePlan {
    /// Total number of wire messages (header + follow-ups).
    pub fn wire_messages(&self) -> usize {
        1 + self.parts.len()
    }
}

/// Plan the wire messages for `msg`.
///
/// * `max_header`: [`MAX_HEADER_SIZE`] for the improved parcelports,
///   [`ORIGINAL_HEADER_SIZE`] for the original MPI parcelport.
/// * `piggyback_trans`: the original MPI parcelport could only piggyback
///   the non-zero-copy chunk; the improved version also piggybacks the
///   transmission chunk.
pub fn plan_message(
    msg: &HpxMessage,
    tag_base: u64,
    max_header: usize,
    piggyback_trans: bool,
) -> MessagePlan {
    let nzc = &msg.non_zero_copy;
    let trans = msg.transmission.as_ref();
    let piggy_nzc = FIXED_FIELDS + nzc.len() <= max_header;
    let piggy_trans = piggyback_trans
        && trans.is_some()
        && piggy_nzc
        && FIXED_FIELDS + nzc.len() + trans.map_or(0, |t| t.len()) <= max_header;

    let mut flags = 0u8;
    if piggy_nzc {
        flags |= FLAG_PIGGY_NZC;
    }
    if piggy_trans {
        flags |= FLAG_PIGGY_TRANS;
    }
    if trans.is_some() {
        flags |= FLAG_HAS_TRANS;
    }

    let mut w = Writer::with_capacity(FIXED_FIELDS + if piggy_nzc { nzc.len() } else { 0 });
    w.put_u64(tag_base);
    w.put_u32(msg.zero_copy.len() as u32);
    w.put_u8(flags);
    w.put_u32(nzc.len() as u32);
    w.put_u32(trans.map_or(0, |t| t.len()) as u32);
    if piggy_nzc {
        w.put_raw(nzc);
    }
    if piggy_trans {
        w.put_raw(trans.expect("piggy_trans implies trans"));
    }
    let header = w.finish();
    debug_assert!(header.len() <= max_header, "header exceeded its limit");

    let mut parts = Vec::new();
    if !piggy_nzc {
        parts.push((PartId::Nzc, nzc.clone()));
    }
    if let Some(t) = trans {
        if !piggy_trans {
            parts.push((PartId::Trans, t.clone()));
        }
    }
    for (i, c) in msg.zero_copy.iter().enumerate() {
        parts.push((PartId::Zc(i as u32), c.clone()));
    }
    MessagePlan { header, parts }
}

/// Decoded header contents on the receive side.
#[derive(Debug)]
pub struct HeaderInfo {
    /// Base tag for the follow-up messages.
    pub tag_base: u64,
    /// Number of zero-copy chunks to expect.
    pub zc_count: u32,
    /// Whether the message has a transmission chunk at all.
    pub has_trans: bool,
    /// Piggybacked non-zero-copy chunk, if it fit.
    pub nzc: Option<Bytes>,
    /// Piggybacked transmission chunk, if it fit.
    pub trans: Option<Bytes>,
    /// Size of the non-zero-copy chunk (for the follow-up receive).
    pub nzc_size: u32,
    /// Size of the transmission chunk.
    pub trans_size: u32,
}

impl HeaderInfo {
    /// Decode a header message. Piggybacked chunks come out as zero-copy
    /// sub-views of the header buffer (refcount bumps, no allocation) —
    /// the header was received into registered storage and the chunks can
    /// alias it for their whole lifetime.
    pub fn decode(header: &Bytes) -> HeaderInfo {
        let mut r = Reader::new(header);
        let tag_base = r.get_u64();
        let zc_count = r.get_u32();
        let flags = r.get_u8();
        let nzc_size = r.get_u32();
        let trans_size = r.get_u32();
        let nzc = if flags & FLAG_PIGGY_NZC != 0 {
            Some(header.slice(FIXED_FIELDS..FIXED_FIELDS + nzc_size as usize))
        } else {
            None
        };
        let trans = if flags & FLAG_PIGGY_TRANS != 0 {
            let off = FIXED_FIELDS + nzc_size as usize;
            Some(header.slice(off..off + trans_size as usize))
        } else {
            None
        };
        HeaderInfo {
            tag_base,
            zc_count,
            has_trans: flags & FLAG_HAS_TRANS != 0,
            nzc,
            trans,
            nzc_size,
            trans_size,
        }
    }

    /// The follow-up parts still to be received, in order.
    pub fn expected_parts(&self) -> Vec<PartId> {
        let mut v = Vec::new();
        if self.nzc.is_none() {
            v.push(PartId::Nzc);
        }
        if self.has_trans && self.trans.is_none() {
            v.push(PartId::Trans);
        }
        for i in 0..self.zc_count {
            v.push(PartId::Zc(i));
        }
        v
    }
}

/// Receive-side assembly of an HPX message from its parts.
#[derive(Debug)]
pub struct MessageAssembly {
    nzc: Option<Bytes>,
    trans: Option<Bytes>,
    zc: Vec<Option<Bytes>>,
    missing: usize,
    has_trans: bool,
}

impl MessageAssembly {
    /// Start assembling from a decoded header.
    pub fn new(info: &HeaderInfo) -> MessageAssembly {
        let missing = info.expected_parts().len();
        MessageAssembly {
            nzc: info.nzc.clone(),
            trans: info.trans.clone(),
            zc: vec![None; info.zc_count as usize],
            missing,
            has_trans: info.has_trans,
        }
    }

    /// Supply one received part.
    pub fn supply(&mut self, part: PartId, data: Bytes) {
        let slot = match part {
            PartId::Nzc => &mut self.nzc,
            PartId::Trans => &mut self.trans,
            PartId::Zc(i) => &mut self.zc[i as usize],
        };
        assert!(slot.is_none(), "part {part:?} supplied twice");
        *slot = Some(data);
        self.missing -= 1;
    }

    /// Whether every expected part has arrived.
    pub fn is_complete(&self) -> bool {
        self.missing == 0
    }

    /// Finish into an [`HpxMessage`]; panics if incomplete.
    pub fn into_message(self) -> HpxMessage {
        assert!(self.is_complete(), "assembling an incomplete message");
        HpxMessage {
            non_zero_copy: self.nzc.expect("nzc present"),
            zero_copy: self.zc.into_iter().map(|c| c.expect("zc present")).collect(),
            transmission: if self.has_trans {
                Some(self.trans.expect("trans present"))
            } else {
                None
            },
            flows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::parcel::Parcel;

    fn msg(small: usize, large: &[usize]) -> HpxMessage {
        let mut args = vec![Bytes::from(vec![1u8; small])];
        args.extend(large.iter().map(|&n| Bytes::from(vec![2u8; n])));
        HpxMessage::encode(&[Parcel::new(0, args)], 8192)
    }

    #[test]
    fn small_message_fully_piggybacks() {
        let m = msg(64, &[]);
        let plan = plan_message(&m, 7, MAX_HEADER_SIZE, true);
        assert!(plan.parts.is_empty(), "everything rides on the header");
        let info = HeaderInfo::decode(&plan.header);
        assert_eq!(info.tag_base, 7);
        assert_eq!(info.nzc.as_ref().unwrap(), &m.non_zero_copy);
        assert!(!info.has_trans);
        let asm = MessageAssembly::new(&info);
        assert!(asm.is_complete());
        assert_eq!(asm.into_message().decode(), m.decode());
    }

    #[test]
    fn zero_copy_message_piggybacks_nzc_and_trans() {
        let m = msg(64, &[16 * 1024]);
        let plan = plan_message(&m, 9, MAX_HEADER_SIZE, true);
        // Only the zero-copy chunk travels separately.
        assert_eq!(plan.parts.len(), 1);
        assert!(matches!(plan.parts[0].0, PartId::Zc(0)));
        let info = HeaderInfo::decode(&plan.header);
        assert!(info.has_trans);
        assert!(info.trans.is_some());
        assert_eq!(info.zc_count, 1);
        let mut asm = MessageAssembly::new(&info);
        assert!(!asm.is_complete());
        asm.supply(PartId::Zc(0), plan.parts[0].1.clone());
        assert!(asm.is_complete());
        assert_eq!(asm.into_message().decode(), m.decode());
    }

    #[test]
    fn oversized_nzc_travels_separately() {
        let m = msg(8160, &[]); // arg still below the 8192 zero-copy
                                // threshold, but framing pushes the chunk
                                // past the header limit
        let plan = plan_message(&m, 1, MAX_HEADER_SIZE, true);
        assert_eq!(plan.parts.len(), 1);
        assert!(matches!(plan.parts[0].0, PartId::Nzc));
        let info = HeaderInfo::decode(&plan.header);
        assert!(info.nzc.is_none());
        assert_eq!(info.nzc_size as usize, m.non_zero_copy.len());
        let mut asm = MessageAssembly::new(&info);
        asm.supply(PartId::Nzc, plan.parts[0].1.clone());
        assert_eq!(asm.into_message().decode(), m.decode());
    }

    #[test]
    fn original_parcelport_cannot_piggyback_trans() {
        let m = msg(64, &[16 * 1024]);
        let plan = plan_message(&m, 1, ORIGINAL_HEADER_SIZE, false);
        // nzc rides (small), transmission + zc travel separately.
        assert_eq!(plan.parts.len(), 2);
        assert!(matches!(plan.parts[0].0, PartId::Trans));
        assert!(matches!(plan.parts[1].0, PartId::Zc(0)));
        let info = HeaderInfo::decode(&plan.header);
        assert!(info.trans.is_none());
        assert!(info.has_trans);
        let mut asm = MessageAssembly::new(&info);
        for (id, data) in &plan.parts {
            asm.supply(*id, data.clone());
        }
        assert_eq!(asm.into_message().decode(), m.decode());
    }

    #[test]
    fn original_header_overflows_to_separate_nzc() {
        let m = msg(1000, &[]);
        let plan = plan_message(&m, 1, ORIGINAL_HEADER_SIZE, false);
        assert_eq!(plan.parts.len(), 1, "1000B nzc does not fit in 512B header");
        assert!(plan.header.len() <= ORIGINAL_HEADER_SIZE);
    }

    #[test]
    fn tag_offsets_are_distinct() {
        let parts = [PartId::Nzc, PartId::Trans, PartId::Zc(0), PartId::Zc(1), PartId::Zc(7)];
        let offsets: std::collections::HashSet<u64> =
            parts.iter().map(|p| p.tag_offset()).collect();
        assert_eq!(offsets.len(), parts.len());
    }

    #[test]
    #[should_panic(expected = "supplied twice")]
    fn duplicate_part_detected() {
        let m = msg(64, &[16 * 1024]);
        let plan = plan_message(&m, 1, MAX_HEADER_SIZE, true);
        let info = HeaderInfo::decode(&plan.header);
        let mut asm = MessageAssembly::new(&info);
        asm.supply(PartId::Zc(0), plan.parts[0].1.clone());
        asm.supply(PartId::Zc(0), plan.parts[0].1.clone());
    }

    #[test]
    fn multi_zero_copy_ordering() {
        let m = msg(32, &[9000, 10000, 11000]);
        let plan = plan_message(&m, 5, MAX_HEADER_SIZE, true);
        assert_eq!(plan.parts.len(), 3);
        let info = HeaderInfo::decode(&plan.header);
        assert_eq!(info.expected_parts().len(), 3);
        let mut asm = MessageAssembly::new(&info);
        // Supply out of order — assembly is order-independent.
        asm.supply(PartId::Zc(2), plan.parts[2].1.clone());
        asm.supply(PartId::Zc(0), plan.parts[0].1.clone());
        asm.supply(PartId::Zc(1), plan.parts[1].1.clone());
        let out = asm.into_message();
        assert_eq!(out.decode(), m.decode());
    }
}
