//! # parcelport — the MPI and LCI parcelports of HPX (the paper's core)
//!
//! A *parcelport* transfers serialized HPX messages between localities
//! (§2.2). This crate implements the two backends the paper compares,
//! faithful to §3:
//!
//! ## The MPI parcelport ([`mpi_pp::MpiParcelport`])
//! * a *connection* object per in-flight HPX message, on both sides;
//! * one protocol *header message* (MPI tag 0) carrying metadata and —
//!   in the improved version — piggybacking the non-zero-copy chunk and
//!   the transmission chunk when they fit under the zero-copy threshold;
//! * an atomic counter for tags, one tag per connection;
//! * at most one outstanding send/receive per connection, sequenced by
//!   `MPI_Test` polling from the background-work function;
//! * a spinlock-protected pending-connection list checked round-robin;
//! * the *original* variant (fixed 512-byte stack header, no transmission
//!   piggyback, tag-release protocol with a lock-protected free-tag list)
//!   for the ~20% ablation described in §3.1.
//!
//! ## The LCI parcelport ([`lci_pp::LciParcelport`])
//! * the baseline `lci_psr_cq_pin(_i)`: header sent with the one-sided
//!   *dynamic put* straight out of an LCI-allocated buffer (one copy
//!   saved), remote completion through a pre-configured completion
//!   queue, follow-ups via medium/long send-recv with a distinct tag per
//!   message, a dedicated pinned progress thread, completion queues
//!   instead of a pending-connection scan;
//! * research variants along four axes (§3.2.2): protocol
//!   {`putsendrecv`, `sendrecv`} × progress {`pin`, `worker`} ×
//!   completion {`cq`, `sync`} × send-immediate {on, off}.
//!
//! [`config::PpConfig`] implements the Table-1 naming scheme
//! (`lci_psr_cq_pin_i`, `mpi_i`, ...); [`builder::build_world`] assembles
//! a ready-to-run two-node (or N-node) world for any configuration.

pub mod builder;
pub mod config;
pub mod header;
pub mod lci_pp;
pub mod mpi_pp;
pub mod sharded;
pub mod tcp_pp;

pub use builder::{build_world, World, WorldConfig};
pub use config::{Backend, Completion, PpConfig, Progress, Protocol};
pub use header::{HeaderInfo, MessagePlan, PartId, MAX_HEADER_SIZE};
pub use sharded::{build_sharded_world, LaneSetup, LocalityNode, ShardedWorld};
