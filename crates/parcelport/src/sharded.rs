//! The federated world: one engine lane per locality on the sharded
//! conservative engine ([`simcore::ShardedSim`]).
//!
//! # Execution model
//!
//! [`build_world`](crate::build_world) drives every locality from one
//! event heap; this module instead gives every locality its own *lane* —
//! a [`LocalityNode`] actor owning a full nested [`Sim`], its locality,
//! its parcelport stack, and a private [`Fabric`] replica. Lanes are
//! placed onto engine shards (block partition, `rank * shards /
//! localities`), and the conservative window is the fabric's
//! [`Fabric::min_lookahead`] — asserted positive at construction, so
//! every cross-locality wire transit pays at least one lookahead by
//! construction.
//!
//! Cross-locality traffic leaves a lane as raw [`Packet`]s: after each
//! nested advance the lane drains its fabric replica's outbound queues
//! ([`Fabric::drain_remote`]) into per-`(src, dst)` payload mailboxes
//! (each mutex touched by one producer and one consumer) and posts one
//! engine wake per packet at `now + lookahead` — satisfying the engine's
//! lookahead bound exactly. The destination lane accepts due packets
//! ([`Fabric::accept_remote`]) with their *original* delivery instants
//! before advancing, so wire timing is preserved: acceptance mirrors the
//! legacy shared-fabric enqueue at send time, and delivery still happens
//! at the modeled `deliver_at`. (On the ideal zero-latency wire the 1 ns
//! lookahead floor defers cross-lane *visibility* by at most 1 ns; local
//! delivery timing is untouched — see `Fabric::min_lookahead`.)
//!
//! # Determinism
//!
//! Lane placement and executor choice are invisible to results: the
//! engine's canonical key `(time, lane, seq)` is independent of the
//! shard count and of thread scheduling, every lane's nested `Sim` runs
//! sequentially whatever thread hosts it, and mailbox acceptance scans
//! sources in rank order. Shards ∈ {1, 2, 4, 8} × {sequential,
//! threaded} all yield bit-identical canonical logs, digests, and
//! telemetry (pinned by `tests/golden_trace.rs`).
//!
//! # Telemetry
//!
//! With a collector enabled, each lane owns a [`telemetry::LaneCollector`]
//! (flow tracer namespaced by lane, private causal log, its own windowed
//! timeline), installed around every dispatch and merged into the
//! harness's collector in lane-rank order after the run — so merged
//! telemetry is also shard-count- and run-mode-invariant.
//!
//! One modeling difference from the shared-fabric world is deliberate:
//! switched-topology port contention is partitioned per *source* (each
//! lane's replica only sees its own sends), so cross-source port queueing
//! is not modeled in the federated world. Deterministic, documented in
//! DESIGN.md §3.14.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use amt::action::ActionRegistry;
use amt::parcel_layer::ParcelLayerConfig;
use amt::runtime::{Runtime, RuntimeConfig};
use amt::sched::WorkerConfig;
use amt::{Locality, Parcelport};
use lci::{Device, DeviceConfig};
use mpisim::{Comm, CommConfig};
use netsim::{Fabric, Packet};
use simcore::shard::{RunMode, RunReport};
use simcore::{
    CostModel, LaneCtx, LaneId, ShardActor, ShardEventId, ShardedSim, Sim, SimTime, Tracer,
};

use crate::builder::WorldConfig;
use crate::config::{Backend, Progress};
use crate::lci_pp::LciParcelport;
use crate::mpi_pp::MpiParcelport;
use crate::tcp_pp::TcpParcelport;

/// A packet crossing lanes through a payload mailbox. The engine wake
/// event carries only the happens-before edge; the payload rides here.
struct MailPacket {
    /// When the destination lane may observe the packet (`send-lane now +
    /// lookahead` — monotone per mailbox, which keeps the due-scan a
    /// front-of-queue check).
    wake_at: SimTime,
    /// The modeled delivery instant, preserved end-to-end.
    deliver_at: SimTime,
    pkt: Packet,
}

/// `localities × localities` mailboxes, indexed `src * n + dst`. Each
/// mutex has exactly one producer (the source lane) and one consumer
/// (the destination lane); the engine's epoch barrier provides ordering,
/// the mutex only data-race freedom.
type Mailboxes = Arc<Vec<Mutex<VecDeque<MailPacket>>>>;

/// Engine-event tags for a lane.
const ARG_WAKE: u64 = 0;
const ARG_ADVANCE: u64 = 1;

/// Per-lane application hooks supplied by the harness.
pub struct LaneSetup {
    /// This rank's action registry. Build it fresh per lane: closures
    /// must not share `Rc` state across lanes (lanes may live on
    /// different threads) — share through atomics or communicate through
    /// parcels instead.
    pub registry: ActionRegistry,
    /// Opaque per-lane application state, readable back through
    /// [`ShardedWorld::app`] after the run.
    pub app: Option<Box<dyn Any>>,
    /// Runs at the start of every dispatch on whatever thread hosts the
    /// lane — the hook for replicating thread-local registration (e.g.
    /// octotiger's action-id bundle) onto engine worker threads.
    pub thread_prep: Option<Box<dyn Fn() + Send>>,
}

impl From<ActionRegistry> for LaneSetup {
    fn from(registry: ActionRegistry) -> Self {
        LaneSetup { registry, app: None, thread_prep: None }
    }
}

/// One locality as a shard actor: a nested `Sim` plus the full per-rank
/// stack of [`build_world`](crate::build_world), advanced lockstep with
/// engine time.
pub struct LocalityNode {
    rank: usize,
    localities: usize,
    lookahead: u64,
    /// The nested simulator. Node ids are namespaced `rank << 44` so
    /// per-lane causal logs merge without collisions (lane 0 keeps the
    /// legacy namespace).
    sim: Sim,
    fabric: Rc<RefCell<Fabric>>,
    locality: Rc<Locality>,
    collector: RefCell<Option<telemetry::LaneCollector>>,
    app: Option<Box<dyn Any>>,
    thread_prep: Option<Box<dyn Fn() + Send>>,
    mail: Mailboxes,
    /// The one engine event armed at the nested heap head.
    advance: Option<ShardEventId>,
    /// Reused outbound drain buffer.
    drain: Vec<(SimTime, Packet)>,
}

// SAFETY: a lane is built on the driving thread and then owned by its
// shard; the engine dispatches shards on at most one thread at a time
// and only migrates them at epoch barriers (join/handoff provides the
// happens-before edge). All `Rc`/`RefCell` state is reachable only
// through this node, and the thread-local collectors it touches are
// installed at dispatch entry and uninstalled at exit, so nothing leaks
// across threads.
unsafe impl Send for LocalityNode {}

impl LocalityNode {
    /// This lane's locality.
    pub fn locality(&self) -> &Rc<Locality> {
        &self.locality
    }

    /// This lane's fabric replica.
    pub fn fabric(&self) -> &Rc<RefCell<Fabric>> {
        &self.fabric
    }

    /// Virtual time the nested simulator has reached.
    pub fn nested_now(&self) -> SimTime {
        self.sim.now()
    }

    /// Events the nested simulator executed.
    pub fn nested_events(&self) -> u64 {
        self.sim.events_executed()
    }

    /// The per-lane application state installed via [`LaneSetup::app`].
    pub fn app_ref(&self) -> Option<&dyn Any> {
        self.app.as_deref()
    }
}

impl ShardActor for LocalityNode {
    fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
        if let Some(prep) = &self.thread_prep {
            prep();
        }
        let collector = self.collector.borrow();
        if let Some(c) = collector.as_ref() {
            c.install();
            telemetry::profile_set_loc(self.rank);
        }
        let now = ctx.now();
        if arg == ARG_ADVANCE {
            self.advance = None;
        }

        // 1. Accept every due inbound packet, sources in rank order (the
        //    deterministic merge order), per-source FIFO — which is the
        //    per-channel FIFO `Fabric::accept_remote` requires.
        let n = self.localities;
        for src in 0..n {
            if src == self.rank {
                continue;
            }
            let mut q = self.mail[src * n + self.rank].lock().expect("mailbox poisoned");
            while q.front().is_some_and(|m| m.wake_at <= now) {
                let m = q.pop_front().expect("front checked");
                self.fabric.borrow_mut().accept_remote(&mut self.sim, m.deliver_at, m.pkt);
            }
        }

        // 2. Advance the nested world to engine time.
        self.sim.run_until(now);

        // 3. Export outbound packets: payload into the mailbox, one
        //    engine wake per packet at exactly `now + lookahead`.
        self.fabric.borrow_mut().drain_remote(self.rank, &mut self.drain);
        let wake = now + self.lookahead;
        for (deliver_at, pkt) in self.drain.drain(..) {
            let dst = pkt.dst;
            debug_assert!(dst < n && dst != self.rank);
            self.mail[self.rank * n + dst]
                .lock()
                .expect("mailbox poisoned")
                .push_back(MailPacket { wake_at: wake, deliver_at, pkt });
            ctx.send(LaneId(dst as u32), wake, ARG_WAKE);
        }

        // 4. Re-arm the advance event at the nested heap head.
        match (self.advance, self.sim.next_event_at()) {
            (Some(id), Some(at)) => {
                let live = ctx.reschedule(id, at);
                debug_assert!(live, "armed advance event must be pending");
            }
            (Some(id), None) => {
                ctx.cancel(id);
                self.advance = None;
            }
            (None, Some(at)) => {
                self.advance = Some(ctx.schedule_at(at, ARG_ADVANCE));
            }
            (None, None) => {}
        }

        if let Some(c) = collector.as_ref() {
            c.uninstall();
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A fully-wired federated world, ready to run.
pub struct ShardedWorld {
    /// The sharded engine holding one [`LocalityNode`] lane per locality.
    pub engine: ShardedSim,
    /// The configuration it was built from.
    pub config: WorldConfig,
    /// Engine shards the lanes were placed on.
    pub shards: usize,
    lookahead: u64,
    /// The harness collector that was active on the building thread, kept
    /// by handle: in sequential mode the lane dispatches run on this very
    /// thread and each dispatch's collector uninstall clears the
    /// thread-local slot, so re-querying `telemetry::active()` at merge
    /// time would silently find nothing.
    main_tel: Option<Rc<telemetry::Telemetry>>,
    merged: bool,
}

/// Build a federated world: `cfg.localities` lanes over `shards` engine
/// shards. `setup(rank)` supplies each lane's registry and hooks;
/// `seed(rank, sim, locality)` plants the initial workload into each
/// lane's nested simulator (the federated analogue of scheduling into
/// `World::sim`).
pub fn build_sharded_world(
    cfg: &WorldConfig,
    shards: usize,
    mut setup: impl FnMut(usize) -> LaneSetup,
    mut seed: impl FnMut(usize, &mut Sim, &Rc<Locality>),
) -> ShardedWorld {
    let n = cfg.localities;
    let shards = shards.clamp(1, n);
    let devices = cfg.lci_devices.max(1);
    let cost = Rc::new(cfg.cost.clone().unwrap_or_else(CostModel::default_model));

    // The conservative lookahead comes from the fabric model itself —
    // `Fabric::min_lookahead` floors it at 1 ns even for zero-propagation
    // wires, and the engine asserts it positive again at construction.
    let mut probe = Fabric::with_contexts(n, cfg.wire.clone(), devices);
    probe.install_topology(&cfg.topology);
    let lookahead = probe.min_lookahead();
    assert!(
        lookahead > 0,
        "wire model '{}' over '{}' topology advertises zero conservative lookahead; \
         Fabric::min_lookahead must floor it at 1 ns",
        cfg.wire.name,
        cfg.topology.label(),
    );
    drop(probe);

    let mail: Mailboxes =
        Arc::new((0..n * n).map(|_| Mutex::new(VecDeque::new())).collect::<Vec<_>>());

    let dedicated = cfg.pp.dedicated_progress();
    let rt_cfg = RuntimeConfig {
        localities: n,
        workers: if dedicated {
            WorkerConfig::with_progress(cfg.cores)
        } else {
            WorkerConfig::workers_only(cfg.cores)
        },
        layer: ParcelLayerConfig {
            zero_copy_threshold: cfg.zero_copy_threshold,
            send_immediate: cfg.pp.send_immediate,
            max_connections: cfg.max_connections,
        },
    };

    let timeline = telemetry::active().and_then(|tel| tel.timeline_config());
    let mut engine = ShardedSim::new(shards, lookahead);
    for rank in 0..n {
        let LaneSetup { registry, app, thread_prep } = setup(rank);

        let mut sim = Sim::new(cfg.seed);
        // Lane-namespaced causal node ids; lane 0 keeps the legacy ids.
        sim.set_node_base((rank as u64) << 44);

        // A full-size fabric replica: this lane models its own sends end
        // to end; inbound packets are accepted with their original
        // delivery instants.
        let fabric = Rc::new(RefCell::new(Fabric::with_contexts(n, cfg.wire.clone(), devices)));
        fabric.borrow_mut().install_topology(&cfg.topology);
        if let Some(f) = &cfg.faults {
            fabric.borrow_mut().set_faults(f.clone());
        }

        let loc = Runtime::single_locality(rank, &rt_cfg, cost.clone(), registry);
        let pp: Rc<RefCell<dyn Parcelport>> = match cfg.pp.backend {
            Backend::Tcp => Rc::new(RefCell::new(TcpParcelport::new(
                rank,
                fabric.clone(),
                cost.clone(),
                cfg.pp.send_immediate,
            ))),
            Backend::Mpi => {
                let comm = Comm::new(
                    rank,
                    fabric.clone(),
                    cost.clone(),
                    CommConfig { eager_threshold: 8192, progress_burst: 8 },
                );
                Rc::new(RefCell::new(MpiParcelport::new(
                    comm,
                    cost.clone(),
                    cfg.pp.original_mpi,
                    cfg.pp.send_immediate,
                )))
            }
            Backend::Lci => {
                let devs: Vec<Device> = (0..devices)
                    .map(|ctx| {
                        Device::new(
                            rank,
                            fabric.clone(),
                            cost.clone(),
                            DeviceConfig {
                                eager_threshold: 8192,
                                packet_pool_size: 4096,
                                progress_burst: if cfg.pp.progress == Progress::Pin {
                                    8
                                } else {
                                    2
                                },
                                ctx: ctx as u8,
                            },
                        )
                    })
                    .collect();
                Rc::new(RefCell::new(LciParcelport::new_multi(devs, cost.clone(), cfg.pp)))
            }
        };
        loc.set_parcelport(pp);
        let weak = Rc::downgrade(&loc);
        fabric.borrow_mut().set_arrival_waker(
            rank,
            Rc::new(move |sim, at| {
                if let Some(loc) = weak.upgrade() {
                    loc.wake_progress(sim, at);
                }
            }),
        );
        loc.start(&mut sim);
        seed(rank, &mut sim, &loc);

        let collector = if telemetry::enabled() {
            loc.set_tracer(Tracer::new());
            Some(telemetry::LaneCollector::new(rank as u32, timeline.clone()))
        } else {
            None
        };

        let node = LocalityNode {
            rank,
            localities: n,
            lookahead,
            sim,
            fabric,
            locality: loc,
            collector: RefCell::new(collector),
            app,
            thread_prep,
            mail: mail.clone(),
            advance: None,
            drain: Vec::new(),
        };
        // Block placement keeps SFC-adjacent localities on one shard.
        let lane = engine.add_actor(rank * shards / n, Box::new(node));
        assert_eq!(lane, LaneId(rank as u32), "lane ids must equal ranks");
        // Bootstrap: one advance at t=0 (every locality armed its core
        // ticks at 0). The node re-arms with a cancellable handle from
        // its first dispatch onward.
        engine.seed(lane, SimTime::ZERO, ARG_ADVANCE);
    }

    ShardedWorld {
        engine,
        config: cfg.clone(),
        shards,
        lookahead,
        main_tel: telemetry::active(),
        merged: false,
    }
}

impl ShardedWorld {
    /// The conservative lookahead (ns) the lanes run under.
    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    /// The lane actor of `rank`.
    pub fn node(&self, rank: usize) -> &LocalityNode {
        self.engine
            .actor::<LocalityNode>(LaneId(rank as u32))
            .expect("every rank has a LocalityNode lane")
    }

    /// Locality by rank.
    pub fn locality(&self, rank: usize) -> Rc<Locality> {
        self.node(rank).locality.clone()
    }

    /// Downcast rank's [`LaneSetup::app`] state.
    pub fn app<T: 'static>(&self, rank: usize) -> Option<&T> {
        self.node(rank).app_ref()?.downcast_ref::<T>()
    }

    /// Run the engine to quiescence. `mode` pins the executor; `None`
    /// lets the engine pick (threaded when shards > 1 and the host has
    /// cores to spare). Merges per-lane telemetry into the harness
    /// collector afterwards.
    pub fn run(&mut self, mode: Option<RunMode>) -> RunReport {
        let report = match mode {
            Some(RunMode::Sequential) => self.engine.run_sequential(),
            Some(RunMode::Threaded) => self.engine.run_threaded(),
            None => self.engine.run(),
        };
        self.merge_telemetry();
        report
    }

    /// Sum of nested events executed across lanes — the federated
    /// analogue of `World::sim.events_executed()`.
    pub fn events_executed(&self) -> u64 {
        (0..self.config.localities).map(|r| self.node(r).nested_events()).sum()
    }

    /// Latest nested virtual time across lanes.
    pub fn now(&self) -> SimTime {
        (0..self.config.localities)
            .map(|r| self.node(r).nested_now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Drain per-lane collectors (flows, metrics, causal logs, spans,
    /// timelines) into the harness collector, lanes in rank order —
    /// exactly once; later calls are no-ops. Runs automatically at the
    /// end of [`ShardedWorld::run`].
    pub fn merge_telemetry(&mut self) {
        if self.merged {
            return;
        }
        self.merged = true;
        let Some(main) = self.main_tel.take() else { return };
        let mut lanes = Vec::new();
        for rank in 0..self.config.localities {
            let node = self.node(rank);
            let Some(collector) = node.collector.borrow_mut().take() else { continue };
            if let Some(tr) = node.locality.take_tracer() {
                collector.telemetry().add_spans(tr.spans().iter().cloned());
            }
            lanes.push(collector);
        }
        if !lanes.is_empty() {
            telemetry::merge_lane_collectors(&main, lanes);
        }
    }
}

impl Drop for ShardedWorld {
    fn drop(&mut self) {
        self.merge_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sink_registry(hits: Arc<AtomicUsize>, expected_size: usize) -> ActionRegistry {
        let mut registry = ActionRegistry::new();
        registry.register("sink", move |sim, _loc, _core, p| {
            assert_eq!(p.args[0].len(), expected_size, "payload size corrupted");
            hits.fetch_add(1, Ordering::Relaxed);
            sim.now() + 200
        });
        registry
    }

    /// `n` messages of `size` bytes from rank 0 to rank 1, across lanes.
    fn roundtrip(ppname: &str, size: usize, count: usize, shards: usize, mode: Option<RunMode>) {
        let hits = Arc::new(AtomicUsize::new(0));
        let cfg = WorldConfig::two_nodes(ppname.parse().unwrap(), 4);
        let h = hits.clone();
        let mut world = build_sharded_world(
            &cfg,
            shards,
            move |_rank| sink_registry(h.clone(), size).into(),
            move |rank, sim, loc| {
                if rank != 0 {
                    return;
                }
                let action = loc.with_registry(|r| r.id_of("sink").unwrap());
                for _ in 0..count {
                    let payload = Bytes::from(vec![0xABu8; size]);
                    let loc = loc.clone();
                    loc.clone().spawn(
                        sim,
                        0,
                        Box::new(move |sim, _l, core| {
                            loc.send_action(sim, core, 1, action, vec![payload.clone()])
                        }),
                    );
                }
            },
        );
        world.run(mode);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            count,
            "{ppname}: lost messages across lanes (shards={shards})"
        );
    }

    #[test]
    fn all_backends_roundtrip_across_lanes() {
        for pp in ["lci_psr_cq_pin_i", "mpi_i", "tcp_i"] {
            roundtrip(pp, 8, 20, 2, Some(RunMode::Sequential));
            roundtrip(pp, 16 * 1024, 5, 2, Some(RunMode::Sequential));
        }
    }

    #[test]
    fn threaded_matches_sequential_digest() {
        let digest_of = |mode: RunMode| {
            let hits = Arc::new(AtomicUsize::new(0));
            let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
            let h = hits.clone();
            let mut world = build_sharded_world(
                &cfg,
                2,
                move |_rank| sink_registry(h.clone(), 8).into(),
                move |rank, sim, loc| {
                    if rank != 0 {
                        return;
                    }
                    let action = loc.with_registry(|r| r.id_of("sink").unwrap());
                    for _ in 0..30 {
                        let loc = loc.clone();
                        loc.clone().spawn(
                            sim,
                            0,
                            Box::new(move |sim, _l, core| {
                                loc.send_action(
                                    sim,
                                    core,
                                    1,
                                    action,
                                    vec![Bytes::from_static(b"12345678")],
                                )
                            }),
                        );
                    }
                },
            );
            world.engine.set_exec_capture(true);
            world.run(Some(mode));
            assert_eq!(hits.load(Ordering::Relaxed), 30);
            (world.engine.digest(), world.events_executed(), world.now())
        };
        assert_eq!(digest_of(RunMode::Sequential), digest_of(RunMode::Threaded));
    }

    #[test]
    fn shard_count_is_invisible_to_results() {
        let run = |shards: usize| {
            let hits = Arc::new(AtomicUsize::new(0));
            let cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 4, 4);
            let h = hits.clone();
            let mut world = build_sharded_world(
                &cfg,
                shards,
                move |_rank| sink_registry(h.clone(), 8).into(),
                move |rank, sim, loc| {
                    if rank != 0 {
                        return;
                    }
                    let action = loc.with_registry(|r| r.id_of("sink").unwrap());
                    for dst in 1..4usize {
                        for _ in 0..5 {
                            let loc = loc.clone();
                            loc.clone().spawn(
                                sim,
                                0,
                                Box::new(move |sim, _l, core| {
                                    loc.send_action(
                                        sim,
                                        core,
                                        dst,
                                        action,
                                        vec![Bytes::from_static(b"zzzzzzzz")],
                                    )
                                }),
                            );
                        }
                    }
                },
            );
            world.engine.set_exec_capture(true);
            world.run(Some(RunMode::Sequential));
            assert_eq!(hits.load(Ordering::Relaxed), 15, "shards={shards}: lost parcels");
            (world.engine.digest(), world.events_executed(), world.now())
        };
        let base = run(1);
        assert_eq!(base, run(2));
        assert_eq!(base, run(4));
    }

    #[test]
    fn zero_latency_wire_rides_the_floor_lookahead() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
        cfg.wire = netsim::WireModel::ideal();
        let h = hits.clone();
        let mut world = build_sharded_world(
            &cfg,
            2,
            move |_rank| sink_registry(h.clone(), 8).into(),
            move |rank, sim, loc| {
                if rank != 0 {
                    return;
                }
                let action = loc.with_registry(|r| r.id_of("sink").unwrap());
                let loc = loc.clone();
                loc.clone().spawn(
                    sim,
                    0,
                    Box::new(move |sim, _l, core| {
                        loc.send_action(sim, core, 1, action, vec![Bytes::from_static(b"floor!!!")])
                    }),
                );
            },
        );
        assert_eq!(world.lookahead(), 1, "ideal wire must advertise the 1 ns floor");
        world.run(Some(RunMode::Sequential));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
