//! The TCP parcelport — HPX's original backend (§1: "Prior to this
//! project, it had two communication backends (parcelports): TCP and
//! MPI").
//!
//! Modeled as kernel-socket byte streams over the same wire:
//!
//! * one stream per destination; every HPX message is framed
//!   (length-prefixed) and **fully copied** into the stream — TCP has no
//!   zero-copy path, so large arguments pay user→kernel and kernel→user
//!   copies on both sides;
//! * writes cost a syscall and are segmented into ≤64 KiB kernel
//!   packets, each charged kernel-stack time on both ends;
//! * the receive side reassembles the stream and parses frames from
//!   background work.
//!
//! The point of carrying this backend is the baseline ordering the paper
//! implies: `tcp` ≪ `mpi` < `lci` — reproduced in
//! `bench/src/bin/tcp_comparison.rs`.

use std::collections::{HashMap, VecDeque};

use amt::codec::{Frame, FrameWriter, Reader};
use amt::{BgOutcome, DeliverFn, HpxMessage, OnSent, Parcelport};
use bytes::Bytes;
use netsim::{Fabric, NodeId, Packet, PollOutcome};
use simcore::{CostModel, Sim, SimResource, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Kernel segment size (a large-MTU / GSO segment).
const SEGMENT: usize = 64 * 1024;
/// Packet kind used on the simulated wire.
const KIND_STREAM: u8 = 42;

/// Per-destination outgoing stream state.
struct OutStream {
    /// Byte pieces queued but not yet segmented onto the wire — a rope,
    /// so large frame pieces ride through as refcounted views instead of
    /// being copied into one flat buffer.
    queue: VecDeque<Bytes>,
    /// Total bytes across `queue`.
    queued: usize,
    /// The kernel socket send path: one ordered stream — all writers to
    /// this destination serialize through the socket lock.
    sock: SimResource,
}

impl OutStream {
    /// Take exactly `seg_len` bytes off the front of the rope. A window
    /// that falls inside one piece is a zero-copy sub-view; a window
    /// crossing piece boundaries is merged with a copy. Either way the
    /// byte stream is identical to flat-buffer segmentation.
    fn take_segment(&mut self, seg_len: usize) -> Bytes {
        debug_assert!(seg_len <= self.queued);
        self.queued -= seg_len;
        let front = self.queue.front_mut().expect("rope non-empty");
        if front.len() >= seg_len {
            let seg = front.slice(0..seg_len);
            if front.len() == seg_len {
                self.queue.pop_front();
            } else {
                *front = front.slice(seg_len..);
            }
            return seg;
        }
        let mut v = Vec::with_capacity(seg_len);
        while v.len() < seg_len {
            let piece = self.queue.front_mut().expect("rope non-empty");
            let need = seg_len - v.len();
            if piece.len() <= need {
                v.extend_from_slice(piece);
                self.queue.pop_front();
            } else {
                v.extend_from_slice(&piece[..need]);
                *piece = piece.slice(need..);
            }
        }
        Bytes::from(v)
    }
}

/// Per-source incoming reassembly state.
struct InStream {
    buf: Vec<u8>,
    /// The kernel socket receive path: a single reader per stream.
    sock: SimResource,
}

/// The TCP parcelport.
pub struct TcpParcelport {
    rank: NodeId,
    fabric: Rc<RefCell<Fabric>>,
    cost: Rc<CostModel>,
    deliver: Option<DeliverFn>,
    out: HashMap<NodeId, OutStream>,
    inc: HashMap<NodeId, InStream>,
    name: String,
}

impl TcpParcelport {
    /// Create the parcelport for one locality.
    pub fn new(
        rank: NodeId,
        fabric: Rc<RefCell<Fabric>>,
        cost: Rc<CostModel>,
        send_immediate: bool,
    ) -> Self {
        TcpParcelport {
            rank,
            fabric,
            cost,
            deliver: None,
            out: HashMap::new(),
            inc: HashMap::new(),
            name: format!("tcp{}", if send_immediate { "_i" } else { "" }),
        }
    }

    /// Frame one HPX message into the stream encoding:
    /// `u32 body_len, u32 nzc_len, nzc, u32 zc_count, (u32 len, bytes)*,
    /// u8 has_trans, [u32 trans_len, trans]`.
    ///
    /// Chunk payloads at or above the zero-copy serialization threshold
    /// are carried as shared pieces of the returned [`Frame`] — a
    /// refcount bump on the message's storage — instead of being copied
    /// through the writer. The encoded byte stream is unchanged.
    fn frame(msg: &HpxMessage) -> Frame {
        // The body length is fully determined by the chunk lengths, so
        // compute it up front and emit the prefix before the body —
        // avoiding the old double-buffered prefix-then-copy pass.
        let body_len = 4
            + msg.non_zero_copy.len()
            + 4
            + msg.zero_copy.iter().map(|c| 4 + c.len()).sum::<usize>()
            + 1
            + msg.transmission.as_ref().map_or(0, |t| 4 + t.len());
        let mut w = FrameWriter::with_capacity(64 + msg.total_bytes().min(4096));
        w.put_u32(body_len as u32);
        w.put_shared(&msg.non_zero_copy);
        w.put_u32(msg.zero_copy.len() as u32);
        for c in &msg.zero_copy {
            w.put_shared(c);
        }
        match &msg.transmission {
            Some(t) => {
                w.put_u8(1);
                w.put_shared(t);
            }
            None => w.put_u8(0),
        }
        let f = w.finish();
        debug_assert_eq!(f.len(), 4 + body_len);
        f
    }

    /// Try to parse one complete frame from `buf`; returns the message
    /// and the bytes consumed.
    fn parse_frame(buf: &[u8]) -> Option<(HpxMessage, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        if buf.len() < 4 + body_len {
            return None;
        }
        let mut r = Reader::new(&buf[4..4 + body_len]);
        let nzc = Bytes::copy_from_slice(r.get_bytes());
        let zc_count = r.get_u32() as usize;
        let mut zc = Vec::with_capacity(zc_count);
        for _ in 0..zc_count {
            // Copy out of the stream buffer (a real recv-side copy).
            zc.push(Bytes::copy_from_slice(r.get_bytes()));
        }
        let transmission =
            if r.get_u8() == 1 { Some(Bytes::copy_from_slice(r.get_bytes())) } else { None };
        assert!(r.is_exhausted(), "trailing bytes in TCP frame");
        Some((
            HpxMessage { non_zero_copy: nzc, zero_copy: zc, transmission, flows: Vec::new() },
            4 + body_len,
        ))
    }

    /// Segment and send everything queued for `dest`.
    fn flush(&mut self, sim: &mut Sim, core: usize, dest: NodeId, mut t: SimTime) -> SimTime {
        while self.out.get(&dest).expect("stream exists").queued > 0 {
            let stream = self.out.get_mut(&dest).expect("stream exists");
            let seg_len = stream.queued.min(SEGMENT);
            let seg = stream.take_segment(seg_len);
            // Syscall + kernel copy per segment. The *modeled* TCP stack
            // still pays the copy even when the simulator hands the
            // segment over as a shared view — TCP has no zero-copy path.
            t = t + self.cost.tcp_syscall + self.cost.memcpy(seg_len);
            let out = self.fabric.borrow_mut().send(
                sim,
                core,
                t,
                Packet {
                    src: self.rank,
                    dst: dest,
                    ctx: 0,
                    kind: KIND_STREAM,
                    tag: 0,
                    imm: 0,
                    data: seg,
                },
            );
            t = t.max(out.cpu_done) + self.cost.tcp_kernel;
            sim.stats.bump("tcp_pp.segments_sent");
        }
        t
    }
}

impl Parcelport for TcpParcelport {
    fn put_message(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dest: usize,
        msg: HpxMessage,
        on_sent: Option<OnSent>,
    ) -> SimTime {
        let frame = Self::frame(&msg);
        let transfer = self.cost.cacheline_transfer;
        let stream = self.out.entry(dest).or_insert_with(|| OutStream {
            queue: VecDeque::new(),
            queued: 0,
            sock: SimResource::new("tcp.sock_tx", transfer),
        });
        // Full user-space copy into the socket buffer — including the
        // "zero-copy" chunks, which TCP cannot avoid copying — performed
        // under the socket send lock (one ordered stream per peer). The
        // simulated cost charges the whole frame; the simulator itself
        // only copies the coalesced pieces and shares the large chunks.
        let t0 = at.max(sim.now());
        let copy = self.cost.memcpy(frame.len()) + self.cost.tcp_syscall;
        let mut t = stream.sock.access(t0, core, copy);
        sim.stats.add("tcp_pp.zc_bytes_saved", frame.shared_bytes() as u64);
        stream.queued += frame.len();
        stream.queue.extend(frame.into_pieces());
        t = self.flush(sim, core, dest, t);
        sim.stats.bump("tcp_pp.messages_posted");
        if let Some(cb) = on_sent {
            sim.schedule_once_at(t, cb, core as u64);
        }
        t
    }

    fn background_work(&mut self, sim: &mut Sim, core: usize) -> BgOutcome {
        let mut t = sim.now();
        let mut did_work = false;
        let mut next_arrival = None;
        for _ in 0..8 {
            let outcome = self.fabric.borrow_mut().poll(sim, core, self.rank);
            match outcome {
                PollOutcome::Empty { cpu_done, next_arrival: na } => {
                    t = t.max(cpu_done);
                    next_arrival = na;
                    break;
                }
                PollOutcome::Packet { pkt, cpu_done, .. } => {
                    let transfer = self.cost.cacheline_transfer;
                    let stream = self.inc.entry(pkt.src).or_insert_with(|| InStream {
                        buf: Vec::new(),
                        sock: SimResource::new("tcp.sock_rx", transfer),
                    });
                    // Kernel protocol processing + copy into the stream
                    // buffer, serialized per stream (single reader).
                    let work = self.cost.tcp_kernel + self.cost.memcpy(pkt.len());
                    t = stream.sock.access(t.max(cpu_done), core, work);
                    stream.buf.extend_from_slice(&pkt.data);
                    did_work = true;
                }
            }
        }
        // Parse every complete frame in every stream.
        let srcs: Vec<NodeId> = self.inc.keys().copied().collect();
        for src in srcs {
            loop {
                let parsed = {
                    let stream = self.inc.get_mut(&src).expect("stream exists");
                    Self::parse_frame(&stream.buf)
                };
                match parsed {
                    Some((msg, consumed)) => {
                        let stream = self.inc.get_mut(&src).expect("stream exists");
                        stream.buf.drain(..consumed);
                        let work = self.cost.tcp_syscall + self.cost.memcpy(consumed);
                        t = stream.sock.access(t, core, work);
                        sim.stats.bump("tcp_pp.messages_received");
                        did_work = true;
                        if let Some(d) = self.deliver.clone() {
                            d(sim, core, t, src, msg);
                        }
                    }
                    None => break,
                }
            }
        }
        BgOutcome {
            did_work,
            cpu_done: t,
            retry_at: next_arrival,
            wake_workers: false,
            completions: 0,
        }
    }

    fn set_deliver(&mut self, deliver: DeliverFn) {
        self.deliver = Some(deliver);
    }

    fn config_name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::parcel::Parcel;

    fn msg(sizes: &[usize]) -> HpxMessage {
        let args = sizes.iter().map(|&n| Bytes::from(vec![7u8; n])).collect();
        HpxMessage::encode(&[Parcel::new(1, args)], 8192)
    }

    #[test]
    fn frame_roundtrip_small() {
        let m = msg(&[32, 100]);
        let f = TcpParcelport::frame(&m);
        // Small chunks coalesce: no shared pieces.
        assert_eq!(f.shared_bytes(), 0);
        let flat = f.to_bytes();
        let (out, consumed) = TcpParcelport::parse_frame(&flat).expect("complete frame");
        assert_eq!(consumed, flat.len());
        assert_eq!(out.decode(), m.decode());
    }

    #[test]
    fn frame_roundtrip_zero_copy() {
        let m = msg(&[32, 20_000, 9_000]);
        let f = TcpParcelport::frame(&m);
        // Both large chunks ride along by reference.
        assert_eq!(f.shared_bytes(), 20_000 + 9_000);
        let flat = f.to_bytes();
        let (out, _) = TcpParcelport::parse_frame(&flat).expect("complete frame");
        assert_eq!(out.decode(), m.decode());
        assert_eq!(out.zero_copy.len(), 2);
    }

    #[test]
    fn frame_rope_matches_flat_writer_encoding() {
        // The rope framing must produce the byte stream the old
        // flat-buffer writer produced: prefix + chunks in order.
        let m = msg(&[64, 9_000]);
        let flat = TcpParcelport::frame(&m).to_bytes();
        let mut w = amt::codec::Writer::new();
        w.put_bytes(&m.non_zero_copy);
        w.put_u32(m.zero_copy.len() as u32);
        for c in &m.zero_copy {
            w.put_bytes(c);
        }
        match &m.transmission {
            Some(t) => {
                w.put_u8(1);
                w.put_bytes(t);
            }
            None => w.put_u8(0),
        }
        let body = w.finish();
        let mut framed = amt::codec::Writer::new();
        framed.put_u32(body.len() as u32);
        framed.put_raw(&body);
        assert_eq!(&flat[..], &framed.finish()[..]);
    }

    #[test]
    fn partial_frame_waits() {
        let m = msg(&[512]);
        let f = TcpParcelport::frame(&m).to_bytes();
        assert!(TcpParcelport::parse_frame(&f[..f.len() - 1]).is_none());
        assert!(TcpParcelport::parse_frame(&f[..3]).is_none());
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = TcpParcelport::frame(&msg(&[8])).to_bytes();
        let b = TcpParcelport::frame(&msg(&[16])).to_bytes();
        let mut buf = a.to_vec();
        buf.extend_from_slice(&b);
        let (m1, c1) = TcpParcelport::parse_frame(&buf).expect("first");
        assert_eq!(m1.decode()[0].args[0].len(), 8);
        let (m2, c2) = TcpParcelport::parse_frame(&buf[c1..]).expect("second");
        assert_eq!(m2.decode()[0].args[0].len(), 16);
        assert_eq!(c1 + c2, buf.len());
    }

    #[test]
    fn take_segment_reassembles_rope_exactly() {
        let pieces: Vec<Bytes> = vec![
            Bytes::from(vec![1u8; 3]),
            Bytes::from(vec![2u8; 10]),
            Bytes::from(vec![3u8; 1]),
            Bytes::from(vec![4u8; 7]),
        ];
        let flat: Vec<u8> = pieces.iter().flat_map(|p| p.to_vec()).collect();
        let mut out = OutStream {
            queue: pieces.into_iter().collect(),
            queued: flat.len(),
            sock: SimResource::new("t", 0),
        };
        // Windows chosen to hit: inside-one-piece, piece-exact, and
        // boundary-crossing merge.
        let mut got = Vec::new();
        for w in [2usize, 1, 10, 5, 3] {
            got.extend_from_slice(&out.take_segment(w));
        }
        assert_eq!(out.queued, 0);
        assert!(out.queue.is_empty());
        assert_eq!(got, flat);
    }
}
