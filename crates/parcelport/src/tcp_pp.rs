//! The TCP parcelport — HPX's original backend (§1: "Prior to this
//! project, it had two communication backends (parcelports): TCP and
//! MPI").
//!
//! Modeled as kernel-socket byte streams over the same wire:
//!
//! * one stream per destination; every HPX message is framed
//!   (length-prefixed) and **fully copied** into the stream — TCP has no
//!   zero-copy path, so large arguments pay user→kernel and kernel→user
//!   copies on both sides;
//! * writes cost a syscall and are segmented into ≤64 KiB kernel
//!   packets, each charged kernel-stack time on both ends;
//! * the receive side reassembles the stream and parses frames from
//!   background work.
//!
//! The point of carrying this backend is the baseline ordering the paper
//! implies: `tcp` ≪ `mpi` < `lci` — reproduced in
//! `bench/src/bin/tcp_comparison.rs`.

use std::collections::HashMap;

use amt::codec::{Reader, Writer};
use amt::{BgOutcome, DeliverFn, HpxMessage, OnSent, Parcelport};
use bytes::Bytes;
use netsim::{Fabric, NodeId, Packet, PollOutcome};
use simcore::{CostModel, Sim, SimResource, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Kernel segment size (a large-MTU / GSO segment).
const SEGMENT: usize = 64 * 1024;
/// Packet kind used on the simulated wire.
const KIND_STREAM: u8 = 42;

/// Per-destination outgoing stream state.
struct OutStream {
    /// Bytes queued but not yet segmented onto the wire.
    queue: Vec<u8>,
    /// The kernel socket send path: one ordered stream — all writers to
    /// this destination serialize through the socket lock.
    sock: SimResource,
}

/// Per-source incoming reassembly state.
struct InStream {
    buf: Vec<u8>,
    /// The kernel socket receive path: a single reader per stream.
    sock: SimResource,
}

/// The TCP parcelport.
pub struct TcpParcelport {
    rank: NodeId,
    fabric: Rc<RefCell<Fabric>>,
    cost: Rc<CostModel>,
    deliver: Option<DeliverFn>,
    out: HashMap<NodeId, OutStream>,
    inc: HashMap<NodeId, InStream>,
    name: String,
}

impl TcpParcelport {
    /// Create the parcelport for one locality.
    pub fn new(
        rank: NodeId,
        fabric: Rc<RefCell<Fabric>>,
        cost: Rc<CostModel>,
        send_immediate: bool,
    ) -> Self {
        TcpParcelport {
            rank,
            fabric,
            cost,
            deliver: None,
            out: HashMap::new(),
            inc: HashMap::new(),
            name: format!("tcp{}", if send_immediate { "_i" } else { "" }),
        }
    }

    /// Frame one HPX message into the stream encoding:
    /// `u32 nzc_len, nzc, u32 zc_count, (u64 len, bytes)*, u8 has_trans,
    /// [u32 trans_len, trans]`.
    fn frame(msg: &HpxMessage) -> Bytes {
        let mut w = Writer::with_capacity(64 + msg.total_bytes());
        w.put_bytes(&msg.non_zero_copy);
        w.put_u32(msg.zero_copy.len() as u32);
        for c in &msg.zero_copy {
            w.put_bytes(c);
        }
        match &msg.transmission {
            Some(t) => {
                w.put_u8(1);
                w.put_bytes(t);
            }
            None => w.put_u8(0),
        }
        // Length-prefix the whole frame.
        let body = w.finish();
        let mut framed = Writer::with_capacity(4 + body.len());
        framed.put_u32(body.len() as u32);
        framed.put_raw(&body);
        framed.finish()
    }

    /// Try to parse one complete frame from `buf`; returns the message
    /// and the bytes consumed.
    fn parse_frame(buf: &[u8]) -> Option<(HpxMessage, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        if buf.len() < 4 + body_len {
            return None;
        }
        let mut r = Reader::new(&buf[4..4 + body_len]);
        let nzc = Bytes::copy_from_slice(r.get_bytes());
        let zc_count = r.get_u32() as usize;
        let mut zc = Vec::with_capacity(zc_count);
        for _ in 0..zc_count {
            // Copy out of the stream buffer (a real recv-side copy).
            zc.push(Bytes::copy_from_slice(r.get_bytes()));
        }
        let transmission = if r.get_u8() == 1 {
            Some(Bytes::copy_from_slice(r.get_bytes()))
        } else {
            None
        };
        assert!(r.is_exhausted(), "trailing bytes in TCP frame");
        Some((HpxMessage { non_zero_copy: nzc, zero_copy: zc, transmission }, 4 + body_len))
    }

    /// Segment and send everything queued for `dest`.
    fn flush(&mut self, sim: &mut Sim, core: usize, dest: NodeId, mut t: SimTime) -> SimTime {
        let stream = self.out.get_mut(&dest).expect("stream exists");
        let data = std::mem::take(&mut stream.queue);
        for seg in data.chunks(SEGMENT) {
            // Syscall + kernel copy per segment.
            t = t + self.cost.tcp_syscall + self.cost.memcpy(seg.len());
            let out = self.fabric.borrow_mut().send(
                sim,
                core,
                t,
                Packet {
                    src: self.rank,
                    dst: dest,
                    ctx: 0,
                    kind: KIND_STREAM,
                    tag: 0,
                    imm: 0,
                    data: Bytes::copy_from_slice(seg),
                },
            );
            t = t.max(out.cpu_done) + self.cost.tcp_kernel;
            sim.stats.bump("tcp_pp.segments_sent");
        }
        t
    }
}

impl Parcelport for TcpParcelport {
    fn put_message(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dest: usize,
        msg: HpxMessage,
        on_sent: Option<OnSent>,
    ) -> SimTime {
        let frame = Self::frame(&msg);
        let transfer = self.cost.cacheline_transfer;
        let stream = self
            .out
            .entry(dest)
            .or_insert_with(|| OutStream { queue: Vec::new(), sock: SimResource::new("tcp.sock_tx", transfer) });
        // Full user-space copy into the socket buffer — including the
        // "zero-copy" chunks, which TCP cannot avoid copying — performed
        // under the socket send lock (one ordered stream per peer).
        let t0 = at.max(sim.now());
        let copy = self.cost.memcpy(frame.len()) + self.cost.tcp_syscall;
        let mut t = stream.sock.access(t0, core, copy);
        self.out.get_mut(&dest).expect("just inserted").queue.extend_from_slice(&frame);
        t = self.flush(sim, core, dest, t);
        sim.stats.bump("tcp_pp.messages_posted");
        if let Some(cb) = on_sent {
            sim.schedule_at(t, move |sim| cb(sim, core));
        }
        t
    }

    fn background_work(&mut self, sim: &mut Sim, core: usize) -> BgOutcome {
        let mut t = sim.now();
        let mut did_work = false;
        let mut next_arrival = None;
        for _ in 0..8 {
            let outcome = self.fabric.borrow_mut().poll(sim, core, self.rank);
            match outcome {
                PollOutcome::Empty { cpu_done, next_arrival: na } => {
                    t = t.max(cpu_done);
                    next_arrival = na;
                    break;
                }
                PollOutcome::Packet { pkt, cpu_done } => {
                    let transfer = self.cost.cacheline_transfer;
                    let stream = self
                        .inc
                        .entry(pkt.src)
                        .or_insert_with(|| InStream { buf: Vec::new(), sock: SimResource::new("tcp.sock_rx", transfer) });
                    // Kernel protocol processing + copy into the stream
                    // buffer, serialized per stream (single reader).
                    let work = self.cost.tcp_kernel + self.cost.memcpy(pkt.len());
                    t = stream.sock.access(t.max(cpu_done), core, work);
                    stream.buf.extend_from_slice(&pkt.data);
                    did_work = true;
                }
            }
        }
        // Parse every complete frame in every stream.
        let srcs: Vec<NodeId> = self.inc.keys().copied().collect();
        for src in srcs {
            loop {
                let parsed = {
                    let stream = self.inc.get_mut(&src).expect("stream exists");
                    Self::parse_frame(&stream.buf)
                };
                match parsed {
                    Some((msg, consumed)) => {
                        let stream = self.inc.get_mut(&src).expect("stream exists");
                        stream.buf.drain(..consumed);
                        let work = self.cost.tcp_syscall + self.cost.memcpy(consumed);
                        t = stream.sock.access(t, core, work);
                        sim.stats.bump("tcp_pp.messages_received");
                        did_work = true;
                        if let Some(d) = self.deliver.clone() {
                            d(sim, core, t, src, msg);
                        }
                    }
                    None => break,
                }
            }
        }
        BgOutcome {
            did_work,
            cpu_done: t,
            retry_at: next_arrival,
            wake_workers: false,
            completions: 0,
        }
    }

    fn set_deliver(&mut self, deliver: DeliverFn) {
        self.deliver = Some(deliver);
    }

    fn config_name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::parcel::Parcel;

    fn msg(sizes: &[usize]) -> HpxMessage {
        let args = sizes.iter().map(|&n| Bytes::from(vec![7u8; n])).collect();
        HpxMessage::encode(&[Parcel::new(1, args)], 8192)
    }

    #[test]
    fn frame_roundtrip_small() {
        let m = msg(&[32, 100]);
        let f = TcpParcelport::frame(&m);
        let (out, consumed) = TcpParcelport::parse_frame(&f).expect("complete frame");
        assert_eq!(consumed, f.len());
        assert_eq!(out.decode(), m.decode());
    }

    #[test]
    fn frame_roundtrip_zero_copy() {
        let m = msg(&[32, 20_000, 9_000]);
        let f = TcpParcelport::frame(&m);
        let (out, _) = TcpParcelport::parse_frame(&f).expect("complete frame");
        assert_eq!(out.decode(), m.decode());
        assert_eq!(out.zero_copy.len(), 2);
    }

    #[test]
    fn partial_frame_waits() {
        let m = msg(&[512]);
        let f = TcpParcelport::frame(&m);
        assert!(TcpParcelport::parse_frame(&f[..f.len() - 1]).is_none());
        assert!(TcpParcelport::parse_frame(&f[..3]).is_none());
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = TcpParcelport::frame(&msg(&[8]));
        let b = TcpParcelport::frame(&msg(&[16]));
        let mut buf = a.to_vec();
        buf.extend_from_slice(&b);
        let (m1, c1) = TcpParcelport::parse_frame(&buf).expect("first");
        assert_eq!(m1.decode()[0].args[0].len(), 8);
        let (m2, c2) = TcpParcelport::parse_frame(&buf[c1..]).expect("second");
        assert_eq!(m2.decode()[0].args[0].len(), 16);
        assert_eq!(c1 + c2, buf.len());
    }
}
