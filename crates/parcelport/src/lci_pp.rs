//! The LCI parcelport (§3.2) and its research variants.
//!
//! Baseline (`lci_psr_cq_pin_i`):
//! * **Header**: assembled directly in an LCI-allocated registered buffer
//!   (saving one copy) and transferred with the one-sided *dynamic put*;
//!   the target buffer is allocated by the LCI runtime on arrival and an
//!   entry lands in a pre-configured remote completion queue.
//! * **Follow-ups**: medium sends below the eager threshold, long
//!   (rendezvous) sends above it; a *distinct tag per follow-up message*
//!   because LCI does not guarantee in-order delivery.
//! * **Completion**: completion queues — no pending-connection list to
//!   scan round-robin; worker background work just pops queues.
//! * **Progress**: a dedicated progress thread created via the HPX
//!   resource partitioner and pinned at core 0.
//!
//! Variant axes (§3.2.2): `sendrecv` replaces the header put with a
//! two-sided send matched by an always-posted wildcard receive (like the
//! MPI parcelport); `sync` replaces completion queues with synchronizers
//! in a round-robin-polled pending list (the header put still completes
//! to a queue — the current LCI only supports a pre-configured CQ as the
//! remote completion object); `worker`/`mt` drops the progress thread and
//! lets idle workers call the (try-lock guarded) progress function.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use amt::{BgOutcome, DeliverFn, HpxMessage, OnSent, Parcelport};
use bytes::Bytes;
use lci::{Comp, CompQueue, Device, ProgressOutcome, Request, Synchronizer, ANY_SOURCE};
use simcore::{CostModel, Sim, SimResource, SimTime};

use crate::config::{Completion, PpConfig, Progress, Protocol};
use crate::header::{plan_message, HeaderInfo, MessageAssembly, PartId, MAX_HEADER_SIZE};

/// Tag reserved for header messages (sendrecv protocol).
const TAG_HEADER: u64 = 0;
/// First tag handed out to connections.
const FIRST_TAG: u64 = 16;
/// Tag wrap-around bound (same safety assumption as the MPI parcelport).
const TAG_LIMIT: u64 = 1 << 40;
/// Completion entries processed per background-work call.
const REAP_BUDGET: usize = 8;

/// Completion-key encoding: `key = conn_id << 2 | kind`.
mod kind {
    pub const SEND_PART: u64 = 0;
    pub const RECV_PART: u64 = 1;
    pub const HEADER_RECV: u64 = 2;
}

struct LSendConn {
    dest: usize,
    tag_base: u64,
    header: Option<Bytes>,
    parts: VecDeque<(PartId, Bytes)>,
    awaiting: bool,
    on_sent: Option<OnSent>,
    /// Which LCI device carries this connection (multi-device mode).
    dev: usize,
    /// Telemetry flow ids of the message (empty when disabled).
    flows: Vec<u64>,
}

struct LRecvConn {
    src: usize,
    tag_base: u64,
    expected: VecDeque<PartId>,
    asm: MessageAssembly,
    /// Device the header arrived on; follow-ups use the same context.
    dev: usize,
    /// Telemetry flow ids claimed from the route registry.
    flows: Vec<u64>,
}

/// The LCI parcelport.
pub struct LciParcelport {
    /// One or more LCI devices. One is the paper's configuration; more
    /// implements the §7.2 future work ("replicating low-level network
    /// resources"), one network context per device.
    devs: Vec<Device>,
    cfg: PpConfig,
    cost: Rc<CostModel>,
    deliver: Option<DeliverFn>,
    /// Remote completion queues for header puts, one per device.
    rcqs: Vec<Rc<CompQueue>>,
    /// Completion queue for send/receive completions (cq completion type).
    ccq: Rc<CompQueue>,
    /// Pending synchronizer list (sync completion type), polled
    /// round-robin under a lock like the MPI pending-connection list.
    pending_syncs: Vec<(u64, Rc<Synchronizer>)>,
    sync_res: SimResource,
    sync_cursor: usize,
    send_conns: HashMap<u64, LSendConn>,
    recv_conns: HashMap<u64, LRecvConn>,
    next_conn: u64,
    tag_counter: u64,
    tag_res: SimResource,
    /// Send connections that hit `Retry` (packet pool exhausted).
    retry_queue: VecDeque<u64>,
    header_recv_posted: bool,
    /// Round-robin cursor for the dedicated progress thread over devices.
    progress_cursor: usize,
    name: String,
}

impl LciParcelport {
    /// Create the parcelport for one locality over a single `dev`. The
    /// device's remote CQ is configured here.
    pub fn new(dev: Device, cost: Rc<CostModel>, cfg: PpConfig) -> Self {
        Self::new_multi(vec![dev], cost, cfg)
    }

    /// Create the parcelport over several devices (one per network
    /// context) — the §7.2 extension. Connections spread round-robin.
    pub fn new_multi(mut devs: Vec<Device>, cost: Rc<CostModel>, cfg: PpConfig) -> Self {
        assert!(!devs.is_empty());
        let transfer = cost.cacheline_transfer;
        let mut rcqs = Vec::new();
        for d in devs.iter_mut() {
            let rcq = CompQueue::new("lci_pp.rcq", transfer);
            d.set_remote_cq(rcq.clone());
            rcqs.push(rcq);
        }
        let ccq = CompQueue::new("lci_pp.ccq", transfer);
        let name =
            if devs.len() > 1 { format!("{}_d{}", cfg, devs.len()) } else { cfg.to_string() };
        LciParcelport {
            devs,
            cfg,
            deliver: None,
            rcqs,
            ccq,
            pending_syncs: Vec::new(),
            sync_res: SimResource::new("lci_pp.sync_list", transfer),
            sync_cursor: 0,
            send_conns: HashMap::new(),
            recv_conns: HashMap::new(),
            next_conn: 1,
            tag_counter: FIRST_TAG,
            tag_res: SimResource::new("lci_pp.tag_counter", transfer),
            retry_queue: VecDeque::new(),
            header_recv_posted: false,
            progress_cursor: 0,
            name,
            cost,
        }
    }

    /// Number of LCI devices (network contexts) in use.
    pub fn device_count(&self) -> usize {
        self.devs.len()
    }

    /// In-flight sender connections (observability).
    pub fn send_connections(&self) -> usize {
        self.send_conns.len()
    }

    /// In-flight receiver connections (observability).
    pub fn recv_connections(&self) -> usize {
        self.recv_conns.len()
    }

    /// The first underlying LCI device (observability).
    pub fn device(&self) -> &Device {
        &self.devs[0]
    }

    /// Completion object for an operation keyed `key`.
    fn comp_for(&mut self, sim: &mut Sim, core: usize, t: SimTime, key: u64) -> (Comp, SimTime) {
        match self.cfg.completion {
            Completion::Cq => (Comp::Cq(self.ccq.clone()), t),
            Completion::Sync => {
                let sync = Synchronizer::new(1, self.cost.cacheline_transfer);
                let t2 = self.sync_res.access(t, core, self.cost.alloc + self.cost.atomic_op);
                self.pending_syncs.push((key, sync.clone()));
                sim.stats.bump("lci_pp.sync_created");
                (Comp::Sync(sync), t2)
            }
        }
    }

    fn alloc_tags(&mut self, core: usize, t: SimTime, count: u64) -> (u64, SimTime) {
        let t2 = self.tag_res.access(t, core, self.cost.atomic_op);
        let base = self.tag_counter;
        self.tag_counter += count;
        if self.tag_counter >= TAG_LIMIT {
            self.tag_counter = FIRST_TAG;
        }
        (base, t2)
    }

    fn ensure_header_recv(&mut self, sim: &mut Sim, core: usize) -> SimTime {
        let mut t = sim.now();
        if self.cfg.protocol == Protocol::SendRecv && !self.header_recv_posted {
            for d in 0..self.devs.len() {
                // Encode the device in the completion key's id field.
                let key = ((d as u64) << 2) | kind::HEADER_RECV;
                let (comp, t2) = self.comp_for(sim, core, t, key);
                t = self.devs[d]
                    .post_recv(sim, core, t2, ANY_SOURCE, TAG_HEADER, comp, key)
                    .max(t2);
            }
            self.header_recv_posted = true;
        }
        t
    }

    /// Post sends for a connection until one is outstanding, the pool
    /// runs dry, or the connection completes.
    fn pump_send(&mut self, sim: &mut Sim, core: usize, id: u64, mut t: SimTime) -> SimTime {
        loop {
            let Some(conn) = self.send_conns.get_mut(&id) else { return t };
            if conn.awaiting {
                return t;
            }
            if let Some(header) = conn.header.clone() {
                let dest = conn.dest;
                let di = conn.dev;
                let res = match self.cfg.protocol {
                    Protocol::PutSendRecv => {
                        // Assemble directly in an LCI packet: no extra copy.
                        match self.devs[di].alloc_packet(sim, core) {
                            Ok((h, t2)) => {
                                t = t.max(t2) + self.cost.pp_header;
                                self.devs[di].post_putva_packet(
                                    sim,
                                    core,
                                    t,
                                    h,
                                    dest,
                                    TAG_HEADER,
                                    header,
                                    Comp::None,
                                    0,
                                )
                            }
                            Err(e) => Err(e),
                        }
                    }
                    Protocol::SendRecv => {
                        t = t + self.cost.pp_header + self.cost.memcpy(header.len());
                        self.devs[di].post_sendm(
                            sim,
                            core,
                            t,
                            dest,
                            TAG_HEADER,
                            header,
                            Comp::None,
                            0,
                        )
                    }
                };
                match res {
                    Ok(t2) => {
                        t = t.max(t2);
                        let conn = self.send_conns.get_mut(&id).expect("exists");
                        conn.header = None;
                        telemetry::flow_mark_many(&conn.flows, telemetry::stage::INJECT, t);
                        sim.stats.bump("lci_pp.header_sent");
                        continue;
                    }
                    Err(_) => {
                        t += self.devs[0].retry_cost();
                        self.retry_queue.push_back(id);
                        sim.stats.bump("lci_pp.send_retry");
                        return t;
                    }
                }
            }
            // Header is out; post the next part (one outstanding at a time).
            let Some(conn) = self.send_conns.get_mut(&id) else { return t };
            match conn.parts.pop_front() {
                Some((pid, data)) => {
                    let dest = conn.dest;
                    let di = conn.dev;
                    let tag = conn.tag_base + pid.tag_offset();
                    let key = (id << 2) | kind::SEND_PART;
                    let (comp, t2) = self.comp_for(sim, core, t, key);
                    t = t2;
                    let res = if data.len() <= self.devs[di].eager_threshold() {
                        self.devs[di].post_sendm(sim, core, t, dest, tag, data.clone(), comp, key)
                    } else {
                        self.devs[di].post_sendl(sim, core, t, dest, tag, data.clone(), comp, key)
                    };
                    match res {
                        Ok(t2) => {
                            t = t.max(t2);
                            self.send_conns.get_mut(&id).expect("exists").awaiting = true;
                            return t;
                        }
                        Err(_) => {
                            t += self.devs[0].retry_cost();
                            let conn = self.send_conns.get_mut(&id).expect("exists");
                            conn.parts.push_front((pid, data));
                            // Drop the unused completion object (sync mode
                            // leaves a dangling entry; it is skipped when
                            // its key no longer resolves).
                            self.retry_queue.push_back(id);
                            sim.stats.bump("lci_pp.send_retry");
                            return t;
                        }
                    }
                }
                None => {
                    // All parts out and none awaiting: connection done.
                    let conn = self.send_conns.remove(&id).expect("exists");
                    if let Some(cb) = conn.on_sent {
                        sim.schedule_once_at(t, cb, core as u64);
                    }
                    sim.stats.bump("lci_pp.send_conn_done");
                    return t;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // one slot per wire fact; bundling obscures the call sites
    fn handle_header(
        &mut self,
        sim: &mut Sim,
        core: usize,
        dev: usize,
        src: usize,
        header: Bytes,
        mut t: SimTime,
        arrived: SimTime,
    ) -> SimTime {
        t = t + self.cost.pp_header + self.cost.pp_connection;
        let info = HeaderInfo::decode(&header);
        let flows = telemetry::take_route(src, self.devs[0].rank(), info.tag_base);
        telemetry::flow_mark_many(&flows, telemetry::stage::WIRE, arrived);
        telemetry::flow_mark_many(&flows, telemetry::stage::MATCH, t);
        let asm = MessageAssembly::new(&info);
        let expected: VecDeque<PartId> = info.expected_parts().into();
        sim.stats.bump("lci_pp.header_received");
        if expected.is_empty() {
            let mut msg = asm.into_message();
            msg.flows = flows;
            if let Some(d) = self.deliver.clone() {
                d(sim, core, t, src, msg);
            }
            sim.stats.bump("lci_pp.recv_conn_done");
            return t;
        }
        let id = self.next_conn;
        self.next_conn += 1;
        let conn = LRecvConn { src, tag_base: info.tag_base, expected, asm, dev, flows };
        self.recv_conns.insert(id, conn);
        self.post_next_recv(sim, core, id, t)
    }

    fn post_next_recv(&mut self, sim: &mut Sim, core: usize, id: u64, mut t: SimTime) -> SimTime {
        let Some(conn) = self.recv_conns.get(&id) else { return t };
        let di = conn.dev;
        let (src, tag) = match conn.expected.front() {
            Some(pid) => (conn.src, conn.tag_base + pid.tag_offset()),
            None => return t,
        };
        let key = (id << 2) | kind::RECV_PART;
        let (comp, t2) = self.comp_for(sim, core, t, key);
        t = self.devs[di].post_recv(sim, core, t2, src, tag, comp, key).max(t2);
        t
    }

    /// Route one completion entry.
    fn route(&mut self, sim: &mut Sim, core: usize, req: Request, mut t: SimTime) -> SimTime {
        let key = req.user;
        let id = key >> 2;
        match key & 3 {
            kind::SEND_PART => {
                if let Some(conn) = self.send_conns.get_mut(&id) {
                    conn.awaiting = false;
                    t = self.pump_send(sim, core, id, t);
                }
                t
            }
            kind::RECV_PART => {
                let Some(conn) = self.recv_conns.get_mut(&id) else { return t };
                let pid = conn.expected.pop_front().expect("completion without expectation");
                conn.asm.supply(pid, req.data);
                if conn.expected.is_empty() {
                    let conn = self.recv_conns.remove(&id).expect("exists");
                    let mut msg = conn.asm.into_message();
                    msg.flows = conn.flows;
                    sim.stats.bump("lci_pp.recv_conn_done");
                    if let Some(d) = self.deliver.clone() {
                        d(sim, core, t, conn.src, msg);
                    }
                    t
                } else {
                    self.post_next_recv(sim, core, id, t)
                }
            }
            kind::HEADER_RECV => {
                let dev = (id as usize).min(self.devs.len() - 1);
                self.header_recv_posted = false;
                let t2 = self.ensure_header_recv(sim, core);
                t = self.handle_header(sim, core, dev, req.rank, req.data, t.max(t2), req.arrived);
                t
            }
            other => unreachable!("bad completion kind {other}"),
        }
    }

    /// Reap completions: pop the CQ or scan the synchronizer list.
    fn reap(&mut self, sim: &mut Sim, core: usize, mut t: SimTime) -> (bool, SimTime) {
        let mut did = false;
        match self.cfg.completion {
            Completion::Cq => {
                for _ in 0..REAP_BUDGET {
                    let (item, t2) = self.ccq.pop(sim, core, &self.cost);
                    t = t.max(t2);
                    match item {
                        Some(req) => {
                            did = true;
                            t = self.route(sim, core, req, t);
                        }
                        None => break,
                    }
                }
            }
            Completion::Sync => {
                // Round-robin over the pending synchronizer list, under
                // its lock (this is the extra cost and noise source the
                // paper attributes the sy variants' oscillation to).
                if self.pending_syncs.is_empty() {
                    return (false, t);
                }
                t = self.sync_res.access(t, core, self.cost.atomic_op);
                let n = self.pending_syncs.len();
                let mut tripped = Vec::new();
                for _ in 0..REAP_BUDGET.min(n) {
                    let i = self.sync_cursor % self.pending_syncs.len();
                    self.sync_cursor = self.sync_cursor.wrapping_add(1);
                    let (key, sync) = self.pending_syncs[i].clone();
                    let (ok, t2) = sync.test(sim, core, &self.cost);
                    t = t.max(t2);
                    if ok {
                        self.pending_syncs.swap_remove(i);
                        let mut items = sync.take_items();
                        debug_assert_eq!(items.len(), 1);
                        tripped.push((key, items.pop().expect("one item")));
                    }
                }
                for (_key, req) in tripped {
                    did = true;
                    t = self.route(sim, core, req, t);
                }
            }
        }
        (did, t)
    }

    /// Drain header arrivals from the remote completion queue (puts).
    fn reap_headers(&mut self, sim: &mut Sim, core: usize, mut t: SimTime) -> (bool, SimTime) {
        if self.cfg.protocol != Protocol::PutSendRecv {
            return (false, t);
        }
        let mut did = false;
        for dev in 0..self.devs.len() {
            for _ in 0..REAP_BUDGET {
                let (item, t2) = self.rcqs[dev].pop(sim, core, &self.cost);
                t = t.max(t2);
                match item {
                    Some(req) => {
                        did = true;
                        t = self.handle_header(sim, core, dev, req.rank, req.data, t, req.arrived);
                    }
                    None => break,
                }
            }
        }
        (did, t)
    }

    /// Retry sends that previously hit pool exhaustion.
    fn retry_sends(&mut self, sim: &mut Sim, core: usize, mut t: SimTime) -> (bool, SimTime) {
        let mut did = false;
        for _ in 0..self.retry_queue.len().min(REAP_BUDGET) {
            if let Some(id) = self.retry_queue.pop_front() {
                let before = self.retry_queue.len();
                t = self.pump_send(sim, core, id, t);
                did |= self.retry_queue.len() == before; // progressed if not re-queued
            }
        }
        (did, t)
    }
}

impl Parcelport for LciParcelport {
    fn put_message(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dest: usize,
        msg: HpxMessage,
        on_sent: Option<OnSent>,
    ) -> SimTime {
        let t0 = self.ensure_header_recv(sim, core).max(at);
        // Distinct tag per follow-up message (no in-order guarantee).
        let parts_upper = 2 + msg.zero_copy.len() as u64;
        let (tag_base, t1) = self.alloc_tags(core, t0, parts_upper);
        let plan = plan_message(&msg, tag_base, MAX_HEADER_SIZE, true);
        let t1 = t1 + self.cost.pp_connection;
        sim.stats.bump("lci_pp.messages_posted");
        telemetry::register_route(self.devs[0].rank(), dest, tag_base, &msg.flows);

        let id = self.next_conn;
        self.next_conn += 1;
        // Spread connections over devices (round-robin by connection id).
        let dev = (id as usize) % self.devs.len();
        self.send_conns.insert(
            id,
            LSendConn {
                dest,
                tag_base,
                header: Some(plan.header),
                parts: plan.parts.into(),
                awaiting: false,
                on_sent,
                dev,
                flows: msg.flows,
            },
        );
        self.pump_send(sim, core, id, t1)
    }

    fn background_work(&mut self, sim: &mut Sim, core: usize) -> BgOutcome {
        let mut t = self.ensure_header_recv(sim, core);
        let mut did_work = false;

        // Worker-progress variants drive the LCI progress engine here;
        // with several devices, workers spread across them by core id, so
        // progress genuinely parallelizes (the point of §7.2).
        let mut arrival_hint = None;
        if self.cfg.progress == Progress::Worker {
            let di = core % self.devs.len();
            match self.devs[di].progress(sim, core) {
                ProgressOutcome::Ran { handled, cpu_done, next_arrival } => {
                    t = t.max(cpu_done);
                    did_work |= handled > 0;
                    arrival_hint = next_arrival;
                }
                ProgressOutcome::Busy { cpu_done, free_at } => {
                    t = t.max(cpu_done);
                    arrival_hint = Some(free_at);
                }
            }
        }

        let (d1, t1) = self.reap_headers(sim, core, t);
        let (d2, t2) = self.reap(sim, core, t1);
        let (d3, t3) = self.retry_sends(sim, core, t2);
        did_work |= d1 | d2 | d3;
        let mut retry_at = arrival_hint;
        if !self.retry_queue.is_empty() {
            let r = t3 + self.cost.lci_op * 4;
            retry_at = Some(retry_at.map_or(r, |a| a.min(r)));
        }
        BgOutcome { did_work, cpu_done: t3, retry_at, wake_workers: false, completions: 0 }
    }

    fn progress(&mut self, sim: &mut Sim, core: usize) -> BgOutcome {
        // The dedicated progress thread only makes progress on the LCI
        // runtime; completion reaping stays on the workers. With several
        // devices it cycles over them.
        let di = self.progress_cursor % self.devs.len();
        self.progress_cursor = self.progress_cursor.wrapping_add(1);
        match self.devs[di].progress(sim, core) {
            ProgressOutcome::Ran { handled, cpu_done, next_arrival } => BgOutcome {
                did_work: handled > 0,
                cpu_done,
                retry_at: next_arrival,
                wake_workers: handled > 0,
                completions: handled,
            },
            ProgressOutcome::Busy { cpu_done, free_at } => BgOutcome {
                did_work: false,
                cpu_done,
                retry_at: Some(free_at),
                wake_workers: false,
                completions: 0,
            },
        }
    }

    fn wants_dedicated_progress(&self) -> bool {
        self.cfg.progress == Progress::Pin
    }

    fn set_deliver(&mut self, deliver: DeliverFn) {
        self.deliver = Some(deliver);
    }

    fn config_name(&self) -> String {
        self.name.clone()
    }
}
