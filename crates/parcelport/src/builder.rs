//! World assembly: fabric + runtime + parcelports for any configuration.

use std::cell::RefCell;
use std::rc::Rc;

use amt::action::ActionRegistry;
use amt::parcel_layer::ParcelLayerConfig;
use amt::runtime::{Runtime, RuntimeConfig};
use amt::sched::WorkerConfig;
use amt::{Locality, Parcelport};
use lci::{Device, DeviceConfig};
use mpisim::{Comm, CommConfig};
use netsim::{Fabric, FaultConfig, Topology, WireModel};
use simcore::{CostModel, Sim, Tracer};

use crate::config::{Backend, PpConfig, Progress};
use crate::lci_pp::LciParcelport;
use crate::mpi_pp::MpiParcelport;
use crate::tcp_pp::TcpParcelport;

/// Everything needed to instantiate a runnable world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Parcelport configuration (Table-1 name).
    pub pp: PpConfig,
    /// Number of localities (nodes).
    pub localities: usize,
    /// Cores per locality (including the progress core, if any).
    pub cores: usize,
    /// Wire model (platform preset).
    pub wire: WireModel,
    /// HPX zero-copy serialization threshold.
    pub zero_copy_threshold: usize,
    /// HPX connection-cache limit.
    pub max_connections: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional fault injection (tests only; default: reliable fabric).
    pub faults: Option<FaultConfig>,
    /// Number of LCI devices (network contexts) per locality — 1 in the
    /// paper; >1 implements the §7.2 future work.
    pub lci_devices: usize,
    /// Cost-model override — the what-if engine re-runs scenarios with
    /// scaled knobs through this. `None` uses the calibrated defaults.
    pub cost: Option<CostModel>,
    /// Interconnect topology. [`Topology::Direct`] (the default) is the
    /// original point-to-point wire; switched topologies route every
    /// parcel through modeled switch ports.
    pub topology: Topology,
}

impl WorldConfig {
    /// The paper's microbenchmark topology: two nodes on SDSC Expanse
    /// with `cores` cores each.
    pub fn two_nodes(pp: PpConfig, cores: usize) -> Self {
        WorldConfig {
            pp,
            localities: 2,
            cores,
            wire: WireModel::expanse(),
            zero_copy_threshold: 8192,
            max_connections: 8192,
            seed: 0xC0FFEE,
            faults: None,
            lci_devices: 1,
            cost: None,
            topology: Topology::Direct,
        }
    }

    /// A `localities`-node cluster wired through a fat-tree sized to fit
    /// — the configuration for at-scale (fig-8-style) experiments.
    pub fn cluster(pp: PpConfig, localities: usize, cores: usize) -> Self {
        let mut cfg = WorldConfig::two_nodes(pp, cores);
        cfg.localities = localities;
        cfg.topology = Topology::fat_tree_for(localities);
        cfg
    }
}

/// A fully-wired simulated world.
pub struct World {
    /// The simulator (owns virtual time).
    pub sim: Sim,
    /// The interconnect.
    pub fabric: Rc<RefCell<Fabric>>,
    /// The AMT runtime (localities with installed parcelports).
    pub runtime: Runtime,
    /// The configuration it was built from.
    pub config: WorldConfig,
}

impl World {
    /// Locality by id.
    pub fn locality(&self, id: usize) -> &Rc<Locality> {
        self.runtime.locality(id)
    }

    /// Run until `pending` becomes false or `max_virtual_ns` elapses;
    /// returns whether the condition was met.
    pub fn run_while<P: FnMut(&Sim) -> bool>(
        &mut self,
        max_virtual_ns: u64,
        mut pending: P,
    ) -> bool {
        let deadline = self.sim.now() + max_virtual_ns;
        loop {
            if !pending(&self.sim) {
                return true;
            }
            if self.sim.now() >= deadline || !self.sim.step() {
                return !pending(&self.sim);
            }
        }
    }

    /// Drain per-locality `Tracer` spans into the active telemetry
    /// collector. No-op when telemetry is disabled or no tracers are
    /// attached; idempotent (tracers are taken). Runs automatically when
    /// the world drops, so harnesses that enable telemetry before
    /// [`build_world`] get core spans without further wiring.
    pub fn harvest_tracers(&self) {
        telemetry::with(|tel| {
            for loc in &self.runtime.localities {
                if let Some(tr) = loc.take_tracer() {
                    tel.add_spans(tr.spans().iter().cloned());
                }
            }
        });
    }
}

impl Drop for World {
    fn drop(&mut self) {
        self.harvest_tracers();
    }
}

/// Build a world: fabric, localities, parcelports, wakers — started and
/// ready for work.
pub fn build_world(cfg: &WorldConfig, registry: ActionRegistry) -> World {
    let mut sim = Sim::new(cfg.seed);
    let cost = Rc::new(cfg.cost.clone().unwrap_or_else(CostModel::default_model));
    let fabric = Rc::new(RefCell::new(Fabric::with_contexts(
        cfg.localities,
        cfg.wire.clone(),
        cfg.lci_devices.max(1),
    )));
    fabric.borrow_mut().install_topology(&cfg.topology);
    if let Some(f) = &cfg.faults {
        fabric.borrow_mut().set_faults(f.clone());
    }
    // The fabric's minimum first-hop latency is the conservative lookahead
    // the sharded engine relies on: a locality may only be reached from
    // another locality `>= min_lookahead()` ns in the future. The fabric
    // floors this at 1 ns even for zero-propagation wires (cross-lane
    // *visibility* is deferred to the floor; local delivery timing is
    // untouched — see `Fabric::min_lookahead`), so every wire model and
    // topology yields a runnable conservative lookahead. Keep the
    // invariant asserted here at construction so a fabric change can
    // never silently reintroduce the zero-lookahead footgun.
    assert!(
        fabric.borrow().min_lookahead() > 0,
        "wire model '{}' over '{}' topology advertises zero conservative lookahead; \
         Fabric::min_lookahead must floor it at 1 ns",
        cfg.wire.name,
        cfg.topology.label(),
    );

    let dedicated = cfg.pp.dedicated_progress();
    let rt_cfg = RuntimeConfig {
        localities: cfg.localities,
        workers: if dedicated {
            WorkerConfig::with_progress(cfg.cores)
        } else {
            WorkerConfig::workers_only(cfg.cores)
        },
        layer: ParcelLayerConfig {
            zero_copy_threshold: cfg.zero_copy_threshold,
            send_immediate: cfg.pp.send_immediate,
            max_connections: cfg.max_connections,
        },
    };
    let runtime = Runtime::new(&rt_cfg, cost.clone(), registry);

    for (rank, loc) in runtime.localities.iter().enumerate() {
        let pp: Rc<RefCell<dyn Parcelport>> = match cfg.pp.backend {
            Backend::Tcp => Rc::new(RefCell::new(TcpParcelport::new(
                rank,
                fabric.clone(),
                cost.clone(),
                cfg.pp.send_immediate,
            ))),
            Backend::Mpi => {
                let comm = Comm::new(
                    rank,
                    fabric.clone(),
                    cost.clone(),
                    CommConfig { eager_threshold: 8192, progress_burst: 8 },
                );
                Rc::new(RefCell::new(MpiParcelport::new(
                    comm,
                    cost.clone(),
                    cfg.pp.original_mpi,
                    cfg.pp.send_immediate,
                )))
            }
            Backend::Lci => {
                let devs: Vec<Device> = (0..cfg.lci_devices.max(1))
                    .map(|ctx| {
                        Device::new(
                            rank,
                            fabric.clone(),
                            cost.clone(),
                            DeviceConfig {
                                eager_threshold: 8192,
                                packet_pool_size: 4096,
                                progress_burst: if cfg.pp.progress == Progress::Pin {
                                    8
                                } else {
                                    2
                                },
                                ctx: ctx as u8,
                            },
                        )
                    })
                    .collect();
                Rc::new(RefCell::new(LciParcelport::new_multi(devs, cost.clone(), cfg.pp)))
            }
        };
        loc.set_parcelport(pp);

        // NIC interrupt model: arrivals wake whoever makes progress.
        let weak = Rc::downgrade(loc);
        fabric.borrow_mut().set_arrival_waker(
            rank,
            Rc::new(move |sim, at| {
                if let Some(loc) = weak.upgrade() {
                    loc.wake_progress(sim, at);
                }
            }),
        );
    }

    runtime.start(&mut sim);
    // With telemetry active, give every locality a span tracer so the
    // Chrome export gets one track per core; `World::drop` harvests them.
    if telemetry::enabled() {
        for loc in &runtime.localities {
            loc.set_tracer(Tracer::new());
        }
    }
    World { sim, fabric, runtime, config: cfg.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::cell::Cell;

    /// End-to-end: invoke an action with a payload of `size` bytes across
    /// the two nodes and check it runs exactly `n` times with intact data.
    fn roundtrip(ppname: &str, size: usize, n: usize) {
        let mut registry = ActionRegistry::new();
        let hits = Rc::new(Cell::new(0usize));
        let bytes_ok = Rc::new(Cell::new(true));
        let h = hits.clone();
        let ok = bytes_ok.clone();
        let expected_size = size;
        registry.register("sink", move |sim, _loc, _core, p| {
            h.set(h.get() + 1);
            if p.args[0].len() != expected_size || p.args[0].iter().any(|&b| b != 0xAB) {
                ok.set(false);
            }
            sim.now() + 200
        });
        let action = registry.id_of("sink").unwrap();

        let cfg = WorldConfig::two_nodes(ppname.parse().unwrap(), 4);
        let mut world = build_world(&cfg, registry);
        let payload = Bytes::from(vec![0xABu8; size]);
        for _ in 0..n {
            let p = payload.clone();
            let loc0 = world.locality(0).clone();
            let task: amt::Task =
                Box::new(move |sim, loc, core| loc.send_action(sim, core, 1, action, vec![p]));
            loc0.spawn(&mut world.sim, 0, task);
        }
        let h2 = hits.clone();
        let finished = world.run_while(10_000_000_000, move |_s| h2.get() < n);
        assert!(finished, "{ppname}: only {}/{} actions ran", hits.get(), n);
        assert!(bytes_ok.get(), "{ppname}: payload corrupted");
    }

    #[test]
    fn zero_latency_wire_gets_floor_lookahead() {
        // The ideal wire used to be rejected outright (zero lookahead);
        // the fabric now floors min_lookahead at 1 ns, so a world builds
        // and the conservative invariant holds by construction.
        let mut cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
        cfg.wire = WireModel::ideal();
        let world = build_world(&cfg, ActionRegistry::new());
        assert_eq!(world.fabric.borrow().min_lookahead(), 1);
    }

    #[test]
    fn all_paper_configs_small_messages() {
        for cfg in PpConfig::paper_set() {
            roundtrip(&cfg.to_string(), 8, 20);
        }
    }

    #[test]
    fn all_paper_configs_large_messages() {
        for cfg in PpConfig::paper_set() {
            roundtrip(&cfg.to_string(), 16 * 1024, 10);
        }
    }

    #[test]
    fn original_mpi_roundtrips() {
        roundtrip("mpi_orig", 8, 10);
        roundtrip("mpi_orig", 16 * 1024, 5);
    }

    #[test]
    fn multi_device_lci_roundtrips() {
        for devices in [2usize, 4] {
            let mut registry = ActionRegistry::new();
            let hits = Rc::new(Cell::new(0usize));
            let h = hits.clone();
            registry.register("sink", move |sim, _l, _c, p| {
                assert_eq!(p.args[0].len(), 8);
                h.set(h.get() + 1);
                sim.now() + 100
            });
            let sink = registry.id_of("sink").unwrap();
            let mut cfg = WorldConfig::two_nodes("lci_psr_cq_mt_i".parse().unwrap(), 8);
            cfg.lci_devices = devices;
            let mut world = build_world(&cfg, registry);
            for _ in 0..50 {
                let loc0 = world.locality(0).clone();
                loc0.spawn(
                    &mut world.sim,
                    0,
                    Box::new(move |sim, loc, core| {
                        loc.send_action(sim, core, 1, sink, vec![Bytes::from(vec![1u8; 8])])
                    }),
                );
            }
            let h2 = hits.clone();
            assert!(
                world.run_while(10_000_000_000, move |_| h2.get() < 50),
                "{devices} devices: lost messages"
            );
        }
    }

    #[test]
    fn tcp_roundtrips() {
        roundtrip("tcp", 8, 10);
        roundtrip("tcp_i", 8, 10);
        roundtrip("tcp_i", 16 * 1024, 5);
        roundtrip("tcp_i", 100_000, 3); // multi-segment frames
    }

    #[test]
    fn medium_messages_cross_threshold() {
        // Straddle the zero-copy / eager thresholds.
        for size in [4096, 8191, 8192, 8193, 65536] {
            roundtrip("lci_psr_cq_pin_i", size, 3);
            roundtrip("mpi_i", size, 3);
        }
    }

    #[test]
    fn multiple_args_mixed_sizes() {
        let mut registry = ActionRegistry::new();
        let seen = Rc::new(Cell::new(false));
        let s = seen.clone();
        registry.register("multi", move |sim, _loc, _core, p| {
            assert_eq!(p.args.len(), 3);
            assert_eq!(p.args[0].len(), 16);
            assert_eq!(p.args[1].len(), 20000);
            assert_eq!(p.args[2].len(), 64);
            s.set(true);
            sim.now()
        });
        let action = registry.id_of("multi").unwrap();
        let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
        let mut world = build_world(&cfg, registry);
        let loc0 = world.locality(0).clone();
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                loc.send_action(
                    sim,
                    core,
                    1,
                    action,
                    vec![
                        Bytes::from(vec![1u8; 16]),
                        Bytes::from(vec![2u8; 20000]),
                        Bytes::from(vec![3u8; 64]),
                    ],
                )
            }),
        );
        let s2 = seen.clone();
        assert!(world.run_while(5_000_000_000, move |_| !s2.get()));
    }

    #[test]
    fn cluster_over_fat_tree_roundtrips() {
        let mut registry = ActionRegistry::new();
        let hits = Rc::new(Cell::new(0usize));
        let h = hits.clone();
        registry.register("sink", move |sim, _l, _c, _p| {
            h.set(h.get() + 1);
            sim.now() + 100
        });
        let sink = registry.id_of("sink").unwrap();
        let cfg = WorldConfig::cluster("lci_psr_cq_pin_i".parse().unwrap(), 4, 4);
        let mut world = build_world(&cfg, registry);
        assert!(world.fabric.borrow().min_lookahead() > 0);
        for dst in 1..4usize {
            for _ in 0..5 {
                let l0 = world.locality(0).clone();
                l0.spawn(
                    &mut world.sim,
                    0,
                    Box::new(move |sim, loc, core| {
                        loc.send_action(sim, core, dst, sink, vec![Bytes::from_static(b"z")])
                    }),
                );
            }
        }
        let h2 = hits.clone();
        assert!(world.run_while(10_000_000_000, move |_| h2.get() < 15), "lost parcels");
        // The parcels really crossed modeled switch ports.
        let fab = world.fabric.borrow();
        let topo = fab.topology().expect("cluster config must build a switched topology");
        let carried: u64 = topo.ranked_ports().iter().map(|r| r.1.xmit_pkts).sum();
        assert!(carried > 0, "switch ports must have carried traffic");
    }

    #[test]
    fn bidirectional_traffic() {
        let mut registry = ActionRegistry::new();
        let a = Rc::new(Cell::new(0));
        let b = Rc::new(Cell::new(0));
        let (a2, b2) = (a.clone(), b.clone());
        registry.register("to1", move |sim, _l, _c, _p| {
            a2.set(a2.get() + 1);
            sim.now()
        });
        registry.register("to0", move |sim, _l, _c, _p| {
            b2.set(b2.get() + 1);
            sim.now()
        });
        let to1 = registry.id_of("to1").unwrap();
        let to0 = registry.id_of("to0").unwrap();
        let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 4);
        let mut world = build_world(&cfg, registry);
        for _ in 0..10 {
            let l0 = world.locality(0).clone();
            let l1 = world.locality(1).clone();
            l0.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, 1, to1, vec![Bytes::from_static(b"x")])
                }),
            );
            l1.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    loc.send_action(sim, core, 0, to0, vec![Bytes::from_static(b"y")])
                }),
            );
        }
        let (a3, b3) = (a.clone(), b.clone());
        assert!(world.run_while(10_000_000_000, move |_| a3.get() < 10 || b3.get() < 10));
    }
}
