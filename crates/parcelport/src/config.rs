//! Configuration naming scheme — Table 1 of the paper.
//!
//! | Abbreviation | Configuration |
//! |---|---|
//! | `mpi` | Use the MPI parcelport |
//! | `lci` | Use the LCI parcelport |
//! | `sr`  | Use the sendrecv protocol |
//! | `psr` | Use the putsendrecv protocol |
//! | `sy`  | Use synchronizer as the completion type |
//! | `cq`  | Use completion queue as the completion type |
//! | `pin` | Use a pinned dedicated progress thread |
//! | `mt`  | Use all worker threads to make progress |
//! | `i`   | Enable the send immediate optimization |

use std::fmt;
use std::str::FromStr;

/// Which parcelport backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The MPI parcelport (improved version unless `original_mpi`).
    Mpi,
    /// The LCI parcelport.
    Lci,
    /// The original TCP parcelport (kernel-socket byte streams).
    Tcp,
}

/// How the header message travels (LCI only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// One-sided dynamic put for the header, send/recv for the rest.
    PutSendRecv,
    /// Two-sided send/recv for everything (posted wildcard header recv).
    SendRecv,
}

/// Completion mechanism for follow-up messages (LCI only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Completion queues (the baseline).
    Cq,
    /// Synchronizers + pending list polled round-robin.
    Sync,
}

/// Who calls the communication progress function (LCI only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// A dedicated progress thread pinned to core 0 by the resource
    /// partitioner (`pin` / `rp`).
    Pin,
    /// All worker threads call progress when idle (`mt` / `worker`).
    Worker,
}

/// A full parcelport configuration in the paper's naming scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpConfig {
    /// Backend selection.
    pub backend: Backend,
    /// Header protocol (LCI; the MPI parcelport is always send/recv).
    pub protocol: Protocol,
    /// Completion mechanism (LCI).
    pub completion: Completion,
    /// Progress model (LCI; the MPI parcelport always progresses from
    /// worker threads, as in HPX).
    pub progress: Progress,
    /// The send-immediate optimization (bypass connection cache + parcel
    /// queue). Applies to both backends.
    pub send_immediate: bool,
    /// Use the *original* (pre-improvement) MPI parcelport: fixed 512 B
    /// header, no transmission-chunk piggyback, tag-release protocol.
    pub original_mpi: bool,
}

impl PpConfig {
    /// The paper's default/best LCI configuration: `lci_psr_cq_pin_i`.
    pub fn lci_default() -> Self {
        PpConfig {
            backend: Backend::Lci,
            protocol: Protocol::PutSendRecv,
            completion: Completion::Cq,
            progress: Progress::Pin,
            send_immediate: true,
            original_mpi: false,
        }
    }

    /// `tcp` — the original kernel-socket parcelport.
    pub fn tcp() -> Self {
        PpConfig { backend: Backend::Tcp, ..PpConfig::mpi() }
    }

    /// `mpi` — the improved MPI parcelport without send-immediate.
    pub fn mpi() -> Self {
        PpConfig {
            backend: Backend::Mpi,
            protocol: Protocol::SendRecv,
            completion: Completion::Sync,
            progress: Progress::Worker,
            send_immediate: false,
            original_mpi: false,
        }
    }

    /// `mpi_i` — the improved MPI parcelport with send-immediate.
    pub fn mpi_i() -> Self {
        PpConfig { send_immediate: true, ..PpConfig::mpi() }
    }

    /// The original (pre-project) MPI parcelport, for the §3.1 ablation.
    pub fn mpi_original() -> Self {
        PpConfig { original_mpi: true, ..PpConfig::mpi() }
    }

    /// All eight LCI variants with send-immediate plus `lci_psr_cq_pin`
    /// (no `_i`) and the two MPI variants — the configurations plotted in
    /// the paper's figures.
    pub fn paper_set() -> Vec<PpConfig> {
        let mut v = Vec::new();
        v.push("lci_psr_cq_pin".parse().unwrap());
        for proto in ["psr", "sr"] {
            for comp in ["cq", "sy"] {
                for prog in ["pin", "mt"] {
                    v.push(format!("lci_{proto}_{comp}_{prog}_i").parse().unwrap());
                }
            }
        }
        v.push(PpConfig::mpi());
        v.push(PpConfig::mpi_i());
        v
    }

    /// Whether this configuration wants the runtime to dedicate core 0 to
    /// progress.
    pub fn dedicated_progress(&self) -> bool {
        self.backend == Backend::Lci && self.progress == Progress::Pin
    }
}

impl fmt::Display for PpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.backend {
            Backend::Tcp => write!(f, "tcp")?,
            Backend::Mpi => {
                if self.original_mpi {
                    write!(f, "mpi_orig")?;
                } else {
                    write!(f, "mpi")?;
                }
            }
            Backend::Lci => {
                write!(
                    f,
                    "lci_{}_{}_{}",
                    match self.protocol {
                        Protocol::PutSendRecv => "psr",
                        Protocol::SendRecv => "sr",
                    },
                    match self.completion {
                        Completion::Cq => "cq",
                        Completion::Sync => "sy",
                    },
                    match self.progress {
                        Progress::Pin => "pin",
                        Progress::Worker => "mt",
                    }
                )?;
            }
        }
        if self.send_immediate {
            write!(f, "_i")?;
        }
        Ok(())
    }
}

/// Error from parsing a configuration name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad parcelport config: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FromStr for PpConfig {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut parts: Vec<&str> = s.split('_').collect();
        let send_immediate = parts.last() == Some(&"i");
        if send_immediate {
            parts.pop();
        }
        match parts.as_slice() {
            ["tcp"] => Ok(PpConfig { send_immediate, ..PpConfig::tcp() }),
            ["mpi"] => Ok(PpConfig { send_immediate, ..PpConfig::mpi() }),
            ["mpi", "orig"] => Ok(PpConfig { send_immediate, ..PpConfig::mpi_original() }),
            ["lci", proto, comp, prog] => {
                let protocol = match *proto {
                    "psr" => Protocol::PutSendRecv,
                    "sr" => Protocol::SendRecv,
                    _ => return Err(ParseError(s.into())),
                };
                let completion = match *comp {
                    "cq" => Completion::Cq,
                    "sy" => Completion::Sync,
                    _ => return Err(ParseError(s.into())),
                };
                let progress = match *prog {
                    "pin" | "rp" => Progress::Pin,
                    "mt" | "worker" => Progress::Worker,
                    _ => return Err(ParseError(s.into())),
                };
                Ok(PpConfig {
                    backend: Backend::Lci,
                    protocol,
                    completion,
                    progress,
                    send_immediate,
                    original_mpi: false,
                })
            }
            _ => Err(ParseError(s.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for name in [
            "mpi",
            "mpi_i",
            "lci_psr_cq_pin",
            "lci_psr_cq_pin_i",
            "lci_psr_cq_mt_i",
            "lci_psr_sy_pin_i",
            "lci_psr_sy_mt_i",
            "lci_sr_cq_pin_i",
            "lci_sr_cq_mt_i",
            "lci_sr_sy_pin_i",
            "lci_sr_sy_mt_i",
        ] {
            let cfg: PpConfig = name.parse().unwrap();
            assert_eq!(cfg.to_string(), name, "roundtrip of {name}");
        }
    }

    #[test]
    fn rp_is_an_alias_for_pin() {
        let a: PpConfig = "lci_psr_cq_rp_i".parse().unwrap();
        let b: PpConfig = "lci_psr_cq_pin_i".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_the_paper_baseline() {
        let d = PpConfig::lci_default();
        assert_eq!(d.to_string(), "lci_psr_cq_pin_i");
        assert!(d.dedicated_progress());
    }

    #[test]
    fn mpi_never_dedicates_progress() {
        assert!(!PpConfig::mpi().dedicated_progress());
        assert!(!PpConfig::mpi_i().dedicated_progress());
    }

    #[test]
    fn paper_set_is_complete_and_unique() {
        let set = PpConfig::paper_set();
        assert_eq!(set.len(), 11);
        let names: std::collections::HashSet<String> = set.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), 11);
        assert!(names.contains("lci_psr_cq_pin"));
        assert!(names.contains("mpi"));
        assert!(names.contains("mpi_i"));
        assert!(names.contains("lci_sr_sy_mt_i"));
    }

    #[test]
    fn garbage_rejected() {
        assert!("udp".parse::<PpConfig>().is_err());
        assert!("lci_xx_cq_pin".parse::<PpConfig>().is_err());
        assert!("lci_psr".parse::<PpConfig>().is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let cfg: PpConfig = "tcp".parse().unwrap();
        assert_eq!(cfg.backend, Backend::Tcp);
        assert_eq!(cfg.to_string(), "tcp");
        let cfg: PpConfig = "tcp_i".parse().unwrap();
        assert!(cfg.send_immediate);
        assert_eq!(cfg.to_string(), "tcp_i");
        assert!(!cfg.dedicated_progress());
    }

    #[test]
    fn original_mpi_roundtrip() {
        let cfg = PpConfig::mpi_original();
        assert_eq!(cfg.to_string(), "mpi_orig");
        let parsed: PpConfig = "mpi_orig".parse().unwrap();
        assert!(parsed.original_mpi);
    }
}
