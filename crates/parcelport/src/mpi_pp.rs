//! The MPI parcelport (§3.1), improved and original versions.
//!
//! Transfer of one HPX message:
//! 1. The sender allocates a tag from an atomic counter, plans the wire
//!    messages (header + follow-ups, with piggybacking), creates a
//!    *sender connection*, sends the header with MPI tag 0, and posts the
//!    first follow-up send. At most one send is outstanding per
//!    connection; the next is posted when `MPI_Test` reports completion.
//! 2. The receiver always keeps one wildcard receive posted for headers
//!    (maximum header size, tag 0). Background work checks it; on
//!    completion it decodes the header, creates a *receiver connection*,
//!    posts the first follow-up receive, and re-posts the header receive.
//! 3. Both pending-connection lists are protected by an HPX spinlock and
//!    polled round-robin by the background-work function.
//!
//! The *original* version (§3.1, "the original version") differs in two
//! ways, worth ~20% of Octo-Tiger performance:
//! * the header buffer is a fixed 512-byte stack allocation and can only
//!   piggyback the non-zero-copy chunk (never the transmission chunk);
//! * tags are recycled through a "tag release" message from receiver to
//!   sender and a lock-protected free-tag vector, instead of a bare
//!   atomic counter.

use std::collections::VecDeque;
use std::rc::Rc;

use amt::{BgOutcome, DeliverFn, HpxMessage, OnSent, Parcelport};
use bytes::Bytes;
use mpisim::{Comm, Request, ANY_SOURCE};
use simcore::{CostModel, Sim, SimResource, SimTime};

use crate::header::{
    plan_message, HeaderInfo, MessageAssembly, PartId, MAX_HEADER_SIZE, ORIGINAL_HEADER_SIZE,
};

/// MPI tag reserved for header messages.
const TAG_HEADER: u64 = 0;
/// MPI tag reserved for tag-release messages (original version only).
const TAG_RELEASE: u64 = 1;
/// First tag handed out for connections.
const FIRST_TAG: u64 = 2;
/// Tag wrap-around bound (the paper notes the wrap-around safety
/// assumption; see §3.1 "Tag management").
const TAG_LIMIT: u64 = 1 << 20;
/// Pending connections examined per background-work call.
const SCAN_BUDGET: usize = 8;

struct SendConn {
    dest: usize,
    tag: u64,
    parts: VecDeque<(PartId, Bytes)>,
    outstanding: Option<Request>,
    on_sent: Option<OnSent>,
}

struct RecvConn {
    src: usize,
    tag: u64,
    expected: VecDeque<PartId>,
    asm: MessageAssembly,
    outstanding: Option<(PartId, Request)>,
    /// Telemetry flow ids claimed from the route registry.
    flows: Vec<u64>,
}

/// The MPI parcelport.
pub struct MpiParcelport {
    comm: Comm,
    cost: Rc<CostModel>,
    deliver: Option<DeliverFn>,
    original: bool,
    /// Atomic tag counter (improved) / fallback counter (original).
    tag_counter: u64,
    tag_res: SimResource,
    /// Free-tag vector of the original version (lock-protected).
    free_tags: Vec<u64>,
    header_req: Option<Request>,
    release_req: Option<Request>,
    send_conns: Vec<SendConn>,
    recv_conns: Vec<RecvConn>,
    /// The spinlock around the pending-connection lists.
    pending_res: SimResource,
    rr_cursor: usize,
    /// Last instant background work accomplished something; workers keep
    /// hot-polling (like the HPX scheduler idle loop) while traffic is
    /// recent, and go quiescent only after a silence window.
    last_activity: SimTime,
    name: String,
}

impl MpiParcelport {
    /// Create the parcelport for one locality. `original` selects the
    /// pre-improvement version.
    pub fn new(comm: Comm, cost: Rc<CostModel>, original: bool, send_immediate: bool) -> Self {
        let transfer = cost.cacheline_transfer;
        let name = format!(
            "{}{}",
            if original { "mpi_orig" } else { "mpi" },
            if send_immediate { "_i" } else { "" }
        );
        MpiParcelport {
            comm,
            deliver: None,
            original,
            tag_counter: FIRST_TAG,
            tag_res: SimResource::new("mpi_pp.tag_counter", transfer),
            free_tags: Vec::new(),
            header_req: None,
            release_req: None,
            send_conns: Vec::new(),
            recv_conns: Vec::new(),
            pending_res: SimResource::new("mpi_pp.pending_list", transfer),
            rr_cursor: 0,
            last_activity: SimTime::ZERO,
            name,
            cost,
        }
    }

    /// Pending sender connections (observability).
    pub fn send_connections(&self) -> usize {
        self.send_conns.len()
    }

    /// Pending receiver connections (observability).
    pub fn recv_connections(&self) -> usize {
        self.recv_conns.len()
    }

    /// Access the underlying communicator (tests/metrics: lock stats).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    fn max_header(&self) -> usize {
        if self.original {
            ORIGINAL_HEADER_SIZE
        } else {
            MAX_HEADER_SIZE
        }
    }

    fn alloc_tag(&mut self, _sim: &mut Sim, core: usize, t: SimTime) -> (u64, SimTime) {
        if self.original {
            // Lock-protected free-tag vector; fall back to the counter.
            let t2 = self.tag_res.access(t, core, self.cost.alloc + self.cost.atomic_op);
            if let Some(tag) = self.free_tags.pop() {
                return (tag, t2);
            }
            let tag = self.tag_counter;
            self.tag_counter += 1;
            (tag, t2)
        } else {
            // Bare atomic counter with wrap-around.
            let t2 = self.tag_res.access(t, core, self.cost.atomic_op);
            let tag = self.tag_counter;
            self.tag_counter += 1;
            if self.tag_counter >= TAG_LIMIT {
                self.tag_counter = FIRST_TAG;
            }
            (tag, t2)
        }
    }

    fn ensure_header_recv(&mut self, sim: &mut Sim, core: usize, mut t: SimTime) -> SimTime {
        if self.header_req.is_none() {
            let (req, t2) = self.comm.irecv(sim, core, t, ANY_SOURCE, TAG_HEADER);
            self.header_req = Some(req);
            t = t.max(t2);
        }
        if self.original && self.release_req.is_none() {
            let (req, t2) = self.comm.irecv(sim, core, t, ANY_SOURCE, TAG_RELEASE);
            self.release_req = Some(req);
            t = t.max(t2);
        }
        t
    }

    /// Post sends for a connection until one stays outstanding.
    fn pump_send(&mut self, sim: &mut Sim, core: usize, idx: usize, mut t: SimTime) -> SimTime {
        loop {
            let conn = &mut self.send_conns[idx];
            if let Some(req) = &conn.outstanding {
                if req.is_done() {
                    conn.outstanding = None;
                } else {
                    return t;
                }
            }
            let conn = &mut self.send_conns[idx];
            match conn.parts.pop_front() {
                Some((_id, data)) => {
                    let (req, t2) = self.comm.isend(sim, core, t, conn.dest, conn.tag, data);
                    t = t.max(t2);
                    let conn = &mut self.send_conns[idx];
                    conn.outstanding = Some(req);
                }
                None => {
                    // Connection complete: fire on_sent from a fresh event.
                    let conn = &mut self.send_conns[idx];
                    if let Some(cb) = conn.on_sent.take() {
                        sim.schedule_once_at(t, cb, core as u64);
                    }
                    sim.stats.bump("mpi_pp.send_conn_done");
                    conn.parts.clear();
                    conn.outstanding = Some(Request::completed()); // tombstone
                    conn.tag = u64::MAX; // mark retired
                    return t;
                }
            }
        }
    }

    fn handle_header(
        &mut self,
        sim: &mut Sim,
        core: usize,
        src: usize,
        header: Bytes,
        t: SimTime,
        arrived: SimTime,
    ) -> SimTime {
        let t = t + self.cost.pp_header + self.cost.pp_connection;
        let info = HeaderInfo::decode(&header);
        let flows = telemetry::take_route(src, self.comm.rank(), info.tag_base);
        telemetry::flow_mark_many(&flows, telemetry::stage::WIRE, arrived);
        telemetry::flow_mark_many(&flows, telemetry::stage::MATCH, t);
        let asm = MessageAssembly::new(&info);
        let expected: VecDeque<PartId> = info.expected_parts().into();
        if expected.is_empty() {
            let mut msg = asm.into_message();
            msg.flows = flows;
            sim.stats.bump("mpi_pp.recv_conn_done");
            let t = self.release_tag(sim, core, src, info.tag_base, t);
            if let Some(d) = self.deliver.clone() {
                d(sim, core, t, src, msg);
            }
            return t;
        }
        let mut conn =
            RecvConn { src, tag: info.tag_base, expected, asm, outstanding: None, flows };
        // Post the first follow-up receive.
        let (id, t2) = {
            let id = *conn.expected.front().expect("non-empty");
            let (req, t2) = self.comm.irecv(sim, core, t, src, conn.tag);
            conn.outstanding = Some((id, req));
            (id, t2)
        };
        let _ = id;
        self.recv_conns.push(conn);
        t.max(t2)
    }

    /// Original version: notify the sender that `tag` is free again.
    fn release_tag(
        &mut self,
        sim: &mut Sim,
        core: usize,
        src: usize,
        tag: u64,
        t: SimTime,
    ) -> SimTime {
        if !self.original {
            return t;
        }
        let (_, t2) = self.comm.isend(
            sim,
            core,
            t,
            src,
            TAG_RELEASE,
            Bytes::copy_from_slice(&tag.to_le_bytes()),
        );
        sim.stats.bump("mpi_pp.tag_release_sent");
        t.max(t2)
    }

    /// Advance one receiver connection; returns (advanced, new t).
    fn pump_recv(
        &mut self,
        sim: &mut Sim,
        core: usize,
        idx: usize,
        mut t: SimTime,
    ) -> (bool, SimTime) {
        let done = {
            let conn = &mut self.recv_conns[idx];
            match &conn.outstanding {
                Some((_, req)) => req.is_done(),
                None => false,
            }
        };
        if !done {
            return (false, t);
        }
        let (id, req) = self.recv_conns[idx].outstanding.take().expect("checked");
        let data = req.take_data();
        t += self.cost.memcpy(0); // data handed over by reference
        let conn = &mut self.recv_conns[idx];
        conn.expected.pop_front();
        conn.asm.supply(id, data);
        if let Some(&next) = conn.expected.front() {
            let src = conn.src;
            let tag = conn.tag;
            let (req, t2) = self.comm.irecv(sim, core, t, src, tag);
            let conn = &mut self.recv_conns[idx];
            conn.outstanding = Some((next, req));
            t = t.max(t2);
        } else {
            // Complete: assemble and deliver.
            let conn = self.recv_conns.swap_remove(idx);
            let mut msg = conn.asm.into_message();
            msg.flows = conn.flows;
            sim.stats.bump("mpi_pp.recv_conn_done");
            t = self.release_tag(sim, core, conn.src, conn.tag, t);
            if let Some(d) = self.deliver.clone() {
                d(sim, core, t, conn.src, msg);
            }
        }
        (true, t)
    }
}

impl Parcelport for MpiParcelport {
    fn put_message(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dest: usize,
        msg: HpxMessage,
        on_sent: Option<OnSent>,
    ) -> SimTime {
        let t0 = self.ensure_header_recv(sim, core, at.max(sim.now()));
        let (tag, t1) = self.alloc_tag(sim, core, t0);
        let plan = plan_message(&msg, tag, self.max_header(), !self.original);
        // Original version: the header buffer is a fixed-size stack copy;
        // improved version allocates dynamically (one alloc charge).
        let t1 = t1
            + self.cost.pp_header
            + self.cost.pp_connection
            + if self.original {
                self.cost.memcpy(ORIGINAL_HEADER_SIZE)
            } else {
                self.cost.alloc + self.cost.memcpy(plan.header.len())
            };
        let (_, t2) = self.comm.isend(sim, core, t1, dest, TAG_HEADER, plan.header.clone());
        let mut t = t1.max(t2);
        telemetry::flow_mark_many(&msg.flows, telemetry::stage::INJECT, t1);
        telemetry::register_route(self.comm.rank(), dest, tag, &msg.flows);
        sim.stats.bump("mpi_pp.messages_posted");

        let conn = SendConn { dest, tag, parts: plan.parts.into(), outstanding: None, on_sent };
        // Register in the pending list (spinlock) and pump what we can:
        // eager sends complete at post time, so small messages drain fully
        // right here.
        t = self.pending_res.access(t, core, self.cost.pp_pending_scan);
        self.send_conns.push(conn);
        let idx = self.send_conns.len() - 1;
        t = self.pump_send(sim, core, idx, t);
        self.send_conns.retain(|c| c.tag != u64::MAX || !c.parts.is_empty());
        t
    }

    fn background_work(&mut self, sim: &mut Sim, core: usize) -> BgOutcome {
        let mut t = self.ensure_header_recv(sim, core, sim.now());
        let mut did_work = false;

        // (a) Check the header receive for new incoming HPX messages.
        if let Some(req) = self.header_req.clone() {
            let (done, t2) = self.comm.test(sim, core, t, &req);
            t = t.max(t2);
            if done {
                did_work = true;
                let src = req.source();
                let arrived = req.arrived();
                let header = req.take_data();
                self.header_req = None;
                t = self.ensure_header_recv(sim, core, t);
                t = self.handle_header(sim, core, src, header, t, arrived);
            }
        }

        // (b) Original version: reap tag-release messages.
        if self.original {
            if let Some(req) = self.release_req.clone() {
                if req.is_done() {
                    did_work = true;
                    let tag = u64::from_le_bytes(req.take_data()[..8].try_into().expect("tag"));
                    let t2 = self.tag_res.access(t, core, self.cost.alloc);
                    self.free_tags.push(tag);
                    self.release_req = None;
                    t = self.ensure_header_recv(sim, core, t.max(t2));
                    sim.stats.bump("mpi_pp.tag_release_reaped");
                }
            }
        }

        // (c) Round-robin over pending connections (spinlock-protected
        // list, bounded scan per call).
        let total = self.send_conns.len() + self.recv_conns.len();
        sim.stats.sample("mpi_pp.pending_conns", total as f64);
        if total > 0 {
            t = self.pending_res.access(t, core, self.cost.pp_pending_scan);
            let budget = SCAN_BUDGET.min(total);
            for _ in 0..budget {
                let cursor = self.rr_cursor % total.max(1);
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                if cursor < self.send_conns.len() {
                    let before = self.send_conns[cursor].parts.len();
                    let outstanding_done =
                        self.send_conns[cursor].outstanding.as_ref().is_none_or(|r| r.is_done());
                    if outstanding_done {
                        t = self.pump_send(sim, core, cursor, t);
                        if self.send_conns[cursor].parts.len() != before
                            || self.send_conns[cursor].tag == u64::MAX
                        {
                            did_work = true;
                        }
                    } else {
                        // One MPI_Test on the outstanding request (this is
                        // where mpi_i burns its time under contention).
                        let req = self.send_conns[cursor].outstanding.clone().expect("pending");
                        let (_, t2) = self.comm.test(sim, core, t, &req);
                        t = t.max(t2);
                    }
                } else {
                    let idx = cursor - self.send_conns.len();
                    if idx < self.recv_conns.len() {
                        let req = self.recv_conns[idx].outstanding.as_ref().map(|(_, r)| r.clone());
                        if let Some(req) = req {
                            if !req.is_done() {
                                let (_, t2) = self.comm.test(sim, core, t, &req);
                                t = t.max(t2);
                            }
                        }
                        let (advanced, t2) = self.pump_recv(sim, core, idx, t);
                        t = t2;
                        did_work |= advanced;
                    }
                }
            }
            // Retire completed sender connections.
            self.send_conns.retain(|c| c.tag != u64::MAX);
        } else {
            // Nothing pending: still drive MPI progress once via a test of
            // a dummy (the header request), already done in (a).
        }

        if did_work {
            self.last_activity = t;
        }
        // While traffic is recent, keep the worker hot-polling — this is
        // what all the idle HPX worker threads do in reality, and it is
        // the lock pressure that makes `mpi_i` collapse on many-core
        // nodes. After a silence window, fall back to the NIC arrival
        // hint so the simulation can quiesce.
        let now = sim.now();
        let hot = now.since(self.last_activity) < 200_000; // 200us epoch
        let retry_at =
            if hot { Some(t + self.cost.idle_poll.max(400)) } else { self.comm.next_arrival() };
        BgOutcome { did_work, cpu_done: t, retry_at, wake_workers: false, completions: 0 }
    }

    fn set_deliver(&mut self, deliver: DeliverFn) {
        self.deliver = Some(deliver);
    }

    fn config_name(&self) -> String {
        self.name.clone()
    }
}
