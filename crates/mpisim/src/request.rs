//! Request objects: completion handles polled with `MPI_Test`.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use netsim::NodeId;
use simcore::SimTime;

/// Internal state of a request.
#[derive(Debug)]
pub struct RequestState {
    /// True once the operation completed.
    pub done: bool,
    /// Received payload (receives only).
    pub data: Bytes,
    /// Actual source of the matched message (receives with wildcard).
    pub src: NodeId,
    /// Actual tag of the matched message.
    pub tag: u64,
    /// Wire-arrival instant of the completing packet (receives only;
    /// `SimTime::ZERO` when not applicable). Observability only.
    pub arrived: SimTime,
}

/// A nonblocking-operation handle, like an `MPI_Request`.
///
/// Cloneable; all clones observe the same completion.
#[derive(Debug, Clone)]
pub struct Request(Rc<RefCell<RequestState>>);

impl Request {
    /// Create a pending request.
    pub fn pending() -> Self {
        Request(Rc::new(RefCell::new(RequestState {
            done: false,
            data: Bytes::new(),
            src: 0,
            tag: 0,
            arrived: SimTime::ZERO,
        })))
    }

    /// Create an already-completed request (eager sends).
    pub fn completed() -> Self {
        let r = Request::pending();
        r.0.borrow_mut().done = true;
        r
    }

    /// Whether the operation completed. This is a *pure state read*; the
    /// MPI semantics of `MPI_Test` (which also drives progress) live in
    /// [`crate::Comm::test`].
    pub fn is_done(&self) -> bool {
        self.0.borrow().done
    }

    /// Mark complete with receive metadata.
    pub fn complete(&self, src: NodeId, tag: u64, data: Bytes) {
        let mut s = self.0.borrow_mut();
        debug_assert!(!s.done, "request completed twice");
        s.done = true;
        s.src = src;
        s.tag = tag;
        s.data = data;
    }

    /// Record when the completing packet arrived at the NIC.
    pub fn set_arrived(&self, t: SimTime) {
        self.0.borrow_mut().arrived = t;
    }

    /// Wire-arrival instant of the completing packet (`SimTime::ZERO`
    /// when unknown or not applicable).
    pub fn arrived(&self) -> SimTime {
        self.0.borrow().arrived
    }

    /// Take the received payload (empties the request's buffer).
    pub fn take_data(&self) -> Bytes {
        std::mem::take(&mut self.0.borrow_mut().data)
    }

    /// Source of the matched message.
    pub fn source(&self) -> NodeId {
        self.0.borrow().src
    }

    /// Tag of the matched message.
    pub fn tag(&self) -> u64 {
        self.0.borrow().tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let r = Request::pending();
        assert!(!r.is_done());
        r.complete(3, 9, Bytes::from_static(b"zz"));
        assert!(r.is_done());
        assert_eq!(r.source(), 3);
        assert_eq!(r.tag(), 9);
        assert_eq!(r.take_data().as_ref(), b"zz");
        assert!(r.take_data().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let r = Request::pending();
        let c = r.clone();
        r.complete(0, 0, Bytes::new());
        assert!(c.is_done());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "request completed twice")]
    fn double_complete_panics_in_debug() {
        let r = Request::pending();
        r.complete(0, 0, Bytes::new());
        r.complete(0, 0, Bytes::new());
    }
}
