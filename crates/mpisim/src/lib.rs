//! # mpisim — an MPI-like baseline with a coarse-grained blocking
//! progress lock
//!
//! Models the OpenMPI 4.1.5 / UCX 1.14 stack the paper's MPI parcelport
//! runs on, initialized in `MPI_THREAD_MULTIPLE` mode:
//!
//! * Two-sided `isend`/`irecv` with `(source, tag)` matching, wildcard
//!   source, eager and rendezvous protocols, and [`Request`] objects
//!   polled with [`Comm::test`] / [`Comm::testsome`].
//! * **One global engine lock** ([`simcore::SimLock`]) around every call —
//!   the model of the `ucp_progress` coarse-grained blocking lock. Every
//!   `MPI_Isend`, `MPI_Irecv` and `MPI_Test` from every worker thread
//!   serializes through it, and a contended acquisition pays a handoff
//!   cost that grows with the number of waiters. This is the mechanism
//!   behind the paper's headline pathology: Octo-Tiger with `mpi_i` on
//!   128-core nodes "spent the vast majority of time inside the
//!   `MPI_Test` function, spinning on the blocking lock of the
//!   `ucp_progress` function" (§5), and behind the `mpi` message-rate
//!   curve that rises and then *falls* under injection pressure (Fig. 1).
//!
//! The functional semantics (matching order, unexpected-message queue,
//! rendezvous handshake) mirror `lci`'s, so correctness tests can compare
//! the two stacks; only the concurrency-control model differs — which is
//! exactly the paper's point.

pub mod comm;
pub mod request;

pub use comm::{Comm, CommConfig};
pub use request::{Request, RequestState};

/// Wildcard source rank (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: usize = usize::MAX;
