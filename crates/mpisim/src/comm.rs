//! The communicator: two-sided operations serialized by one blocking lock.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NodeId, Packet, PollOutcome};
use simcore::{CostModel, Sim, SimLock, SimTime};

use crate::request::Request;
use crate::ANY_SOURCE;

/// Packet kinds on the wire (private namespace of this library).
mod kind {
    pub const EAGER: u8 = 1;
    pub const RTS: u8 = 3;
    pub const RTR: u8 = 4;
    pub const DATA: u8 = 5;
}

/// Communicator configuration.
#[derive(Debug, Clone)]
pub struct CommConfig {
    /// Eager/rendezvous switch point (the MPI/UCX "rndv threshold").
    pub eager_threshold: usize,
    /// Max packets handled per progress poll.
    pub progress_burst: usize,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig { eager_threshold: 8192, progress_burst: 8 }
    }
}

struct PostedRecv {
    src: NodeId,
    tag: u64,
    req: Request,
}

struct UnexpMsg {
    src: NodeId,
    tag: u64,
    data: Bytes,
    rts: bool,
    imm: u64,
    arrived: SimTime,
}

struct RdvSend {
    dst: NodeId,
    tag: u64,
    data: Bytes,
    req: Request,
}

/// An MPI communicator endpoint for one rank.
///
/// Every public call acquires the global engine lock (see crate docs);
/// the returned `SimTime` is when the calling core gets its CPU back —
/// under contention this includes the full spin/park time on the lock.
pub struct Comm {
    rank: NodeId,
    fabric: Rc<RefCell<Fabric>>,
    cost: Rc<CostModel>,
    cfg: CommConfig,
    lock: SimLock,
    /// Posted receives, searched linearly like a real MPI posted-recv queue.
    posted: Vec<PostedRecv>,
    /// Unexpected messages, also a linear structure.
    unexpected: Vec<UnexpMsg>,
    rdv_send: HashMap<u64, RdvSend>,
    rdv_recv: HashMap<u64, Request>,
    next_op: u64,
    deferred_scan_ns: u64,
}

impl Comm {
    /// Create the endpoint for `rank`.
    pub fn new(
        rank: NodeId,
        fabric: Rc<RefCell<Fabric>>,
        cost: Rc<CostModel>,
        cfg: CommConfig,
    ) -> Self {
        let (handoff, per_waiter) = (cost.mpi_lock_handoff, cost.mpi_lock_per_waiter);
        Comm {
            rank,
            fabric,
            cost,
            cfg,
            lock: SimLock::new("ucp_progress", handoff, per_waiter),
            posted: Vec::new(),
            unexpected: Vec::new(),
            rdv_send: HashMap::new(),
            rdv_recv: HashMap::new(),
            next_op: 1,
            deferred_scan_ns: 0,
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// The eager/rendezvous threshold.
    pub fn eager_threshold(&self) -> usize {
        self.cfg.eager_threshold
    }

    /// Posted receives currently waiting (observability).
    pub fn posted_receives(&self) -> usize {
        self.posted.len()
    }

    /// Earliest known future packet arrival at this rank (scheduling
    /// hint for pollers; models the NIC interrupt timestamp).
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.fabric.borrow().next_arrival(self.rank)
    }

    /// Unexpected messages currently buffered (observability).
    pub fn unexpected_messages(&self) -> usize {
        self.unexpected.len()
    }

    /// Mean wait per engine-lock acquisition so far, ns (observability —
    /// this is the "time spent spinning in MPI_Test" number).
    pub fn mean_lock_wait_ns(&self) -> f64 {
        self.lock.mean_wait_ns()
    }

    /// Contended acquisitions of the engine lock so far.
    pub fn lock_contended(&self) -> u64 {
        self.lock.contended()
    }

    fn in_flight_ops(&self) -> usize {
        self.posted.len() + self.rdv_send.len() + self.rdv_recv.len()
    }

    /// Estimated critical-section length of one progress poll. Grows with
    /// the number of in-flight operations the engine must examine — the
    /// paper's "MPI has a difficult time dealing with a large number of
    /// concurrent messages".
    fn progress_hold(&self) -> u64 {
        self.cost.mpi_progress_hold
            + self.cost.mpi_progress_per_op * self.in_flight_ops().min(512) as u64
    }

    /// Extra critical-section time accrued by linear-structure scans
    /// performed while handling arrivals (charged to the next lock hold,
    /// since holds are computed on entry).
    fn take_deferred(&mut self) -> u64 {
        std::mem::take(&mut self.deferred_scan_ns)
    }

    /// Cost of scanning a linear queue up to a match at `pos` (or a full
    /// fruitless scan of `len` entries).
    fn scan_cost(&self, pos: Option<usize>, len: usize) -> u64 {
        let entries = match pos {
            Some(p) => p + 1,
            None => len,
        };
        self.cost.mpi_unexp_scan * entries.min(16 * 8192) as u64
    }

    /// Nonblocking send. Eager sends complete immediately (buffered);
    /// rendezvous sends complete once the receiver pulls the payload.
    pub fn isend(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        dst: NodeId,
        tag: u64,
        data: Bytes,
    ) -> (Request, SimTime) {
        let eager = data.len() <= self.cfg.eager_threshold;
        // Progress piggybacks on every call (like UCX); run it first so
        // the packet-handling work it performs is charged to THIS hold.
        self.progress_locked(sim, core);
        let hold = self.cost.mpi_call
            + if eager { self.cost.memcpy(data.len()) } else { 0 }
            + self.take_deferred()
            + self.progress_hold();
        let hold = self.cost.scale_lock_hold(hold);
        let start = at.max(sim.now());
        let grant = self.lock.acquire(core, start, hold);
        sim.stats.sample("mpi.lock_wait_ns", (grant.start - start) as f64);
        sim.stats.bump("mpi.isend");
        telemetry::counter_add_at("mpi.isend_calls", 1, grant.start);
        telemetry::hist_record_at("mpi.lock_wait_ns", grant.start - start, grant.start);
        let req = if eager {
            self.fabric.borrow_mut().send(
                sim,
                core,
                grant.start,
                Packet { src: self.rank, dst, ctx: 0, kind: kind::EAGER, tag, imm: 0, data },
            );
            Request::completed()
        } else {
            let op = self.next_op;
            self.next_op += 1;
            let req = Request::pending();
            let size = data.len();
            self.rdv_send.insert(op, RdvSend { dst, tag, data, req: req.clone() });
            self.fabric.borrow_mut().send(
                sim,
                core,
                grant.start,
                Packet {
                    src: self.rank,
                    dst,
                    ctx: 0,
                    kind: kind::RTS,
                    tag,
                    imm: op,
                    data: Bytes::copy_from_slice(&(size as u64).to_le_bytes()),
                },
            );
            req
        };
        (req, grant.end)
    }

    /// Nonblocking receive from `src` (or [`ANY_SOURCE`]) with tag `tag`.
    pub fn irecv(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        src: NodeId,
        tag: u64,
    ) -> (Request, SimTime) {
        self.progress_locked(sim, core);
        // Search the unexpected queue first (linear, like real MPI); the
        // critical-section cost depends on how deep the match sits.
        let pos = self
            .unexpected
            .iter()
            .position(|m| (src == ANY_SOURCE || m.src == src) && m.tag == tag);
        let hold = self.cost.mpi_call
            + self.cost.mpi_match
            + self.scan_cost(pos, self.unexpected.len())
            + self.take_deferred()
            + self.progress_hold();
        let hold = self.cost.scale_lock_hold(hold);
        let start = at.max(sim.now());
        let grant = self.lock.acquire(core, start, hold);
        sim.stats.sample("mpi.lock_wait_ns", (grant.start - start) as f64);
        sim.stats.bump("mpi.irecv");
        telemetry::counter_add_at("mpi.irecv_calls", 1, grant.start);
        telemetry::hist_record_at("mpi.lock_wait_ns", grant.start - start, grant.start);
        let req = Request::pending();
        if let Some(i) = pos {
            let m = self.unexpected.remove(i);
            if m.rts {
                // Late receive for a rendezvous send: answer RTR now.
                let op = self.next_op;
                self.next_op += 1;
                self.rdv_recv.insert(op, req.clone());
                let at = grant.start;
                self.fabric.borrow_mut().send(
                    sim,
                    core,
                    at,
                    Packet {
                        src: self.rank,
                        dst: m.src,
                        ctx: 0,
                        kind: kind::RTR,
                        tag: op,
                        imm: m.imm,
                        data: Bytes::new(),
                    },
                );
            } else {
                sim.stats.bump("mpi.recv_from_unexpected");
                req.set_arrived(m.arrived);
                req.complete(m.src, m.tag, m.data);
            }
        } else {
            self.posted.push(PostedRecv { src, tag, req: req.clone() });
        }
        (req, grant.end)
    }

    /// `MPI_Test`: drive progress, then report whether `req` completed.
    pub fn test(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        req: &Request,
    ) -> (bool, SimTime) {
        self.progress_locked(sim, core);
        let hold = self.cost.mpi_call + self.take_deferred() + self.progress_hold();
        let hold = self.cost.scale_lock_hold(hold);
        let start = at.max(sim.now());
        let grant = self.lock.acquire(core, start, hold);
        sim.stats.sample("mpi.lock_wait_ns", (grant.start - start) as f64);
        sim.stats.bump("mpi.test");
        telemetry::counter_add_at("mpi.test_calls", 1, grant.start);
        telemetry::hist_record_at("mpi.lock_wait_ns", grant.start - start, grant.start);
        (req.is_done(), grant.end)
    }

    /// `MPI_Testsome`: one lock acquisition, indices of completed requests.
    pub fn testsome(
        &mut self,
        sim: &mut Sim,
        core: usize,
        at: SimTime,
        reqs: &[Request],
    ) -> (Vec<usize>, SimTime) {
        let hold = self.cost.mpi_call
            + self.take_deferred()
            + self.progress_hold()
            + self.cost.atomic_op * reqs.len().min(64) as u64;
        let hold = self.cost.scale_lock_hold(hold);
        let grant = self.lock.acquire(core, at.max(sim.now()), hold);
        sim.stats.bump("mpi.testsome");
        self.progress_locked(sim, core);
        let done = reqs.iter().enumerate().filter(|(_, r)| r.is_done()).map(|(i, _)| i).collect();
        (done, grant.end)
    }

    /// Progress inside the already-held engine lock.
    fn progress_locked(&mut self, sim: &mut Sim, core: usize) {
        for _ in 0..self.cfg.progress_burst {
            let outcome = self.fabric.borrow_mut().poll(sim, core, self.rank);
            match outcome {
                PollOutcome::Empty { .. } => break,
                PollOutcome::Packet { pkt, arrived, .. } => {
                    self.handle_packet(sim, core, pkt, arrived)
                }
            }
        }
    }

    fn match_posted(&mut self, src: NodeId, tag: u64) -> Option<Request> {
        let pos =
            self.posted.iter().position(|p| (p.src == ANY_SOURCE || p.src == src) && p.tag == tag);
        self.deferred_scan_ns += self.scan_cost(pos, self.posted.len());
        let pos = pos?;
        Some(self.posted.remove(pos).req)
    }

    fn handle_packet(&mut self, sim: &mut Sim, core: usize, pkt: Packet, arrived: SimTime) {
        self.deferred_scan_ns += self.cost.mpi_handle_packet;
        match pkt.kind {
            kind::EAGER => match self.match_posted(pkt.src, pkt.tag) {
                Some(req) => {
                    req.set_arrived(arrived);
                    req.complete(pkt.src, pkt.tag, pkt.data)
                }
                None => {
                    sim.stats.bump("mpi.unexpected");
                    self.unexpected.push(UnexpMsg {
                        src: pkt.src,
                        tag: pkt.tag,
                        data: pkt.data,
                        rts: false,
                        imm: 0,
                        arrived,
                    });
                }
            },
            kind::RTS => {
                self.deferred_scan_ns += self.cost.mpi_rndv;
                match self.match_posted(pkt.src, pkt.tag) {
                    Some(req) => {
                        let op = self.next_op;
                        self.next_op += 1;
                        self.rdv_recv.insert(op, req);
                        let now = sim.now();
                        self.fabric.borrow_mut().send(
                            sim,
                            core,
                            now,
                            Packet {
                                src: self.rank,
                                dst: pkt.src,
                                ctx: 0,
                                kind: kind::RTR,
                                tag: op,
                                imm: pkt.imm,
                                data: Bytes::new(),
                            },
                        );
                    }
                    None => {
                        sim.stats.bump("mpi.unexpected_rts");
                        self.unexpected.push(UnexpMsg {
                            src: pkt.src,
                            tag: pkt.tag,
                            data: Bytes::new(),
                            rts: true,
                            imm: pkt.imm,
                            arrived,
                        });
                    }
                }
            }
            kind::RTR => {
                self.deferred_scan_ns += self.cost.mpi_rndv;
                let s = self.rdv_send.remove(&pkt.imm).expect("RTR for unknown op");
                let now = sim.now();
                self.fabric.borrow_mut().send(
                    sim,
                    core,
                    now,
                    Packet {
                        src: self.rank,
                        dst: s.dst,
                        ctx: 0,
                        kind: kind::DATA,
                        tag: s.tag,
                        imm: pkt.tag,
                        data: s.data,
                    },
                );
                s.req.complete(s.dst, s.tag, Bytes::new());
            }
            kind::DATA => {
                let req = self.rdv_recv.remove(&pkt.imm).expect("DATA for unknown op");
                // UCX copies the staged rendezvous payload into the user
                // buffer inside progress (pack + unpack).
                self.deferred_scan_ns += self.cost.mpi_rndv + 2 * self.cost.memcpy(pkt.data.len());
                req.set_arrived(arrived);
                req.complete(pkt.src, pkt.tag, pkt.data);
            }
            other => panic!("unknown MPI packet kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::WireModel;

    fn world() -> (Sim, Comm, Comm) {
        let cost = Rc::new(CostModel::default());
        let fabric = Rc::new(RefCell::new(Fabric::new(2, WireModel::expanse())));
        let a = Comm::new(0, fabric.clone(), cost.clone(), CommConfig::default());
        let b = Comm::new(1, fabric, cost, CommConfig::default());
        (Sim::new(3), a, b)
    }

    fn drive(sim: &mut Sim, c: &mut Comm, req: &Request) {
        for _ in 0..100 {
            sim.run_until(sim.now() + 10_000);
            if c.test(sim, 0, sim.now(), req).0 {
                return;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn eager_roundtrip() {
        let (mut sim, mut a, mut b) = world();
        let now = sim.now();
        let (rreq, _) = b.irecv(&mut sim, 0, now, 0, 5);
        let now = sim.now();
        let (sreq, _) = a.isend(&mut sim, 0, now, 1, 5, Bytes::from_static(b"mpi"));
        assert!(sreq.is_done(), "eager send completes immediately");
        drive(&mut sim, &mut b, &rreq);
        assert_eq!(rreq.take_data().as_ref(), b"mpi");
        assert_eq!(rreq.source(), 0);
    }

    #[test]
    fn unexpected_then_recv() {
        let (mut sim, mut a, mut b) = world();
        let now = sim.now();
        a.isend(&mut sim, 0, now, 1, 9, Bytes::from_static(b"early"));
        sim.run_until(SimTime::from_millis(1));
        // Pump progress so the message lands in the unexpected queue.
        let dummy = Request::completed();
        let now = sim.now();
        b.test(&mut sim, 0, now, &dummy);
        assert_eq!(b.unexpected_messages(), 1);
        let now = sim.now();
        let (rreq, _) = b.irecv(&mut sim, 0, now, ANY_SOURCE, 9);
        assert!(rreq.is_done());
        assert_eq!(rreq.take_data().as_ref(), b"early");
    }

    #[test]
    fn rendezvous_roundtrip() {
        let (mut sim, mut a, mut b) = world();
        let payload = Bytes::from(vec![5u8; 16 * 1024]);
        let now = sim.now();
        let (rreq, _) = b.irecv(&mut sim, 0, now, 0, 2);
        let now = sim.now();
        let (sreq, _) = a.isend(&mut sim, 0, now, 1, 2, payload.clone());
        assert!(!sreq.is_done(), "rendezvous send is not complete at post");
        for _ in 0..100 {
            sim.run_until(sim.now() + 10_000);
            let now = sim.now();
            a.test(&mut sim, 0, now, &sreq);
            let now = sim.now();
            b.test(&mut sim, 0, now, &rreq);
            if sreq.is_done() && rreq.is_done() {
                break;
            }
        }
        assert!(sreq.is_done() && rreq.is_done());
        assert_eq!(rreq.take_data(), payload);
    }

    #[test]
    fn rendezvous_send_before_recv() {
        let (mut sim, mut a, mut b) = world();
        let payload = Bytes::from(vec![6u8; 32 * 1024]);
        let now = sim.now();
        let (sreq, _) = a.isend(&mut sim, 0, now, 1, 4, payload.clone());
        sim.run_until(SimTime::from_millis(1));
        let dummy = Request::completed();
        let now = sim.now();
        b.test(&mut sim, 0, now, &dummy);
        assert_eq!(b.unexpected_messages(), 1, "RTS buffered as unexpected");
        let now = sim.now();
        let (rreq, _) = b.irecv(&mut sim, 0, now, ANY_SOURCE, 4);
        for _ in 0..100 {
            sim.run_until(sim.now() + 10_000);
            let now = sim.now();
            a.test(&mut sim, 0, now, &sreq);
            let now = sim.now();
            b.test(&mut sim, 0, now, &rreq);
            if sreq.is_done() && rreq.is_done() {
                break;
            }
        }
        assert_eq!(rreq.take_data(), payload);
    }

    #[test]
    fn wildcard_recv_reports_actual_source() {
        let (mut sim, mut a, mut b) = world();
        let now = sim.now();
        let (rreq, _) = b.irecv(&mut sim, 0, now, ANY_SOURCE, 0);
        let now = sim.now();
        a.isend(&mut sim, 0, now, 1, 0, Bytes::from_static(b"w"));
        drive(&mut sim, &mut b, &rreq);
        assert_eq!(rreq.source(), 0);
    }

    #[test]
    fn tag_separation() {
        let (mut sim, mut a, mut b) = world();
        let now = sim.now();
        let (r1, _) = b.irecv(&mut sim, 0, now, 0, 1);
        let now = sim.now();
        let (r2, _) = b.irecv(&mut sim, 0, now, 0, 2);
        let now = sim.now();
        a.isend(&mut sim, 0, now, 1, 2, Bytes::from_static(b"two"));
        let now = sim.now();
        a.isend(&mut sim, 0, now, 1, 1, Bytes::from_static(b"one"));
        for _ in 0..100 {
            sim.run_until(sim.now() + 10_000);
            let now = sim.now();
            b.test(&mut sim, 0, now, &r1);
            if r1.is_done() && r2.is_done() {
                break;
            }
        }
        assert_eq!(r1.take_data().as_ref(), b"one");
        assert_eq!(r2.take_data().as_ref(), b"two");
    }

    #[test]
    fn lock_convoy_grows_cpu_time() {
        let (mut sim, _a, mut b) = world();
        let dummy = Request::pending();
        // One caller, uncontended: cheap.
        let now = sim.now();
        let (_, t1) = b.test(&mut sim, 0, now, &dummy);
        let solo = t1 - sim.now();
        // Many "threads" piling on at the same instant: each successive
        // caller waits longer (convoy).
        let mut waits = Vec::new();
        for core in 0..8 {
            let now = sim.now();
            let (_, done) = b.test(&mut sim, core, now, &dummy);
            waits.push(done - sim.now());
        }
        assert!(waits[7] > waits[1], "later callers wait longer: {waits:?}");
        assert!(waits[7] > solo * 4, "contention dominates solo cost");
        assert!(b.lock_contended() > 0);
        assert!(b.mean_lock_wait_ns() > 0.0);
    }

    #[test]
    fn testsome_reports_completed_indices() {
        let (mut sim, mut a, mut b) = world();
        let now = sim.now();
        let (r1, _) = b.irecv(&mut sim, 0, now, 0, 1);
        let now = sim.now();
        let (r2, _) = b.irecv(&mut sim, 0, now, 0, 2);
        let now = sim.now();
        a.isend(&mut sim, 0, now, 1, 1, Bytes::from_static(b"x"));
        sim.run_until(SimTime::from_millis(1));
        let now = sim.now();
        let (done, _) = b.testsome(&mut sim, 0, now, &[r1.clone(), r2.clone()]);
        assert_eq!(done, vec![0]);
        assert!(r1.is_done());
        assert!(!r2.is_done());
    }
}
