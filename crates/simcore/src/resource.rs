//! Contended shared resources modeled as serialized service centers.

use crate::causal::{self, MarkKind};
use crate::probe;
use crate::time::SimTime;

/// A shared mutable software object — a cache line holding an atomic
/// counter, a queue head, a matching-table bucket — modeled as a serialized
/// service center.
///
/// Semantics: each access has a *service time*. Accesses are serialized, so
/// a resource's throughput is capped at `1/service_time` regardless of how
/// many simulated cores hammer it, and concurrent accesses experience
/// queueing delay. When consecutive accesses come from different cores the
/// cache line must migrate, adding `transfer_ns` — so a resource touched by
/// one dedicated core (the paper's pinned progress thread) is cheaper than
/// the same resource shared by all workers (the `mt` variants).
///
/// This is the mechanism behind the paper's observations that "thread
/// contention in the progress engine still makes a great difference when
/// the incoming message rate is high" (§4.1) and that all `mt_i` variants
/// plateau at a common rate.
#[derive(Debug)]
pub struct SimResource {
    name: &'static str,
    next_free: SimTime,
    owner: Option<usize>,
    transfer_ns: u64,
    accesses: u64,
    transfers: u64,
    busy_ns: u64,
    total_queue_ns: u64,
}

impl SimResource {
    /// Create a resource. `transfer_ns` is the extra cost paid when the
    /// accessing core differs from the previous one (cache-line migration).
    pub fn new(name: &'static str, transfer_ns: u64) -> Self {
        SimResource {
            name,
            next_free: SimTime::ZERO,
            owner: None,
            transfer_ns,
            accesses: 0,
            transfers: 0,
            busy_ns: 0,
            total_queue_ns: 0,
        }
    }

    /// Name given at construction (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Perform one access from `core` starting no earlier than `now`, with
    /// base service time `service_ns`. Returns the completion time; the
    /// caller should treat `completion - now` as the time its core spent on
    /// the operation (queueing + transfer + service).
    pub fn access(&mut self, now: SimTime, core: usize, service_ns: u64) -> SimTime {
        let start = now.max(self.next_free);
        self.total_queue_ns += start - now;
        let mut service = service_ns;
        let mut transferred = false;
        if self.owner != Some(core) {
            if self.owner.is_some() {
                self.transfers += 1;
                service += self.transfer_ns;
                transferred = true;
            }
            self.owner = Some(core);
        }
        let end = start + service;
        self.busy_ns += service;
        self.accesses += 1;
        self.next_free = end;
        probe::emit(|p| p.resource_access(self.name, core, now, start - now, service, transferred));
        causal::mark(self.name, MarkKind::Wait, now, start, 0);
        causal::mark(self.name, MarkKind::Work, start, end, 0);
        end
    }

    /// Earliest time a new access could begin service.
    pub fn free_at(&self) -> SimTime {
        self.next_free
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of accesses that paid the ownership-transfer penalty.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Fraction of accesses that migrated between cores.
    pub fn transfer_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.transfers as f64 / self.accesses as f64
        }
    }

    /// Mean queueing delay per access, in ns.
    pub fn mean_queue_ns(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_queue_ns as f64 / self.accesses as f64
        }
    }

    /// Utilization of the resource over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            self.busy_ns as f64 / now.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_owner_pays_no_transfer() {
        let mut r = SimResource::new("ctr", 100);
        let t1 = r.access(SimTime::ZERO, 0, 10);
        assert_eq!(t1, SimTime::from_nanos(10));
        let t2 = r.access(t1, 0, 10);
        assert_eq!(t2, SimTime::from_nanos(20));
        assert_eq!(r.transfers(), 0);
    }

    #[test]
    fn ownership_migration_costs_extra() {
        let mut r = SimResource::new("ctr", 100);
        r.access(SimTime::ZERO, 0, 10);
        let t = r.access(SimTime::from_nanos(10), 1, 10);
        // 10 service + 100 transfer
        assert_eq!(t, SimTime::from_nanos(120));
        assert_eq!(r.transfers(), 1);
        assert!((r.transfer_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_accesses_queue() {
        let mut r = SimResource::new("q", 0);
        // Two cores hit the resource at the same instant: second is delayed.
        let a = r.access(SimTime::from_nanos(100), 0, 50);
        let b = r.access(SimTime::from_nanos(100), 0, 50);
        assert_eq!(a, SimTime::from_nanos(150));
        assert_eq!(b, SimTime::from_nanos(200));
        assert!(r.mean_queue_ns() > 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Completions are monotone and each access takes at least its
            /// service time, regardless of arrival pattern.
            #[test]
            fn completions_monotone_and_lower_bounded(
                accesses in proptest::collection::vec((0u64..10_000, 0usize..4, 1u64..500), 1..200)
            ) {
                let mut r = SimResource::new("prop", 300);
                let mut last = SimTime::ZERO;
                let mut now = SimTime::ZERO;
                for (gap, core, service) in accesses {
                    now = now + gap;
                    let done = r.access(now, core, service);
                    prop_assert!(done >= last, "completions must be monotone");
                    prop_assert!(done.since(now) >= service, "service time is a floor");
                    last = done;
                }
            }

            /// Total busy time equals the sum of services plus transfers,
            /// so utilization can never exceed 1 over the busy horizon.
            #[test]
            fn utilization_never_exceeds_one(
                services in proptest::collection::vec(1u64..1000, 1..100)
            ) {
                let mut r = SimResource::new("prop", 0);
                let mut end = SimTime::ZERO;
                for s in &services {
                    end = r.access(SimTime::ZERO, 0, *s);
                }
                prop_assert!(r.utilization(end) <= 1.0 + 1e-9);
                prop_assert_eq!(end.as_nanos(), services.iter().sum::<u64>());
            }
        }
    }

    #[test]
    fn throughput_is_capped_by_service_time() {
        let mut r = SimResource::new("cap", 0);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t = r.access(SimTime::ZERO, 0, 100);
        }
        // 1000 accesses of 100ns each serialize to exactly 100us.
        assert_eq!(t, SimTime::from_micros(100));
        assert!((r.utilization(t) - 1.0).abs() < 1e-9);
    }
}
