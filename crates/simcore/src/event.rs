//! Typed events and the cancellable four-ary scheduling heap.
//!
//! The engine's hot path schedules three kinds of events over and over:
//! core ticks, packet deliveries, and send-completion callbacks. Boxing a
//! fresh closure for each one puts an allocation on every event; this
//! module gives the [`Sim`] a typed representation instead:
//!
//! * [`EventKind::Handler`] — a registered [`EventHandler`] plus a `u64`
//!   argument word. Scheduling one writes two words into a reused slab
//!   slot: no allocation at all.
//! * [`EventKind::Once`] — an already-boxed `FnOnce` with a `u64`
//!   argument. Scheduling moves the existing box; no *new* allocation.
//! * [`EventKind::Closure`] — the fully general boxed-closure fallback.
//!
//! Storage is an indexed **four-ary min-heap** over a slot slab with a
//! free list. Events are ordered by `(time, sequence)` exactly as before,
//! so runs stay bit-identical; the index (each slot knows its heap
//! position) is what makes `cancel` and `reschedule` O(log n) instead of
//! leaving dead events to fire as no-ops. A four-ary layout halves the
//! tree depth of a binary heap and keeps sibling keys in adjacent cache
//! lines — pop-heavy DES workloads spend most of their time in
//! `sift_down`, which this favors.

use std::rc::Rc;

use crate::sim::Sim;
use crate::time::SimTime;

/// Handle to a scheduled event, as returned by the `schedule_*` methods.
///
/// The handle is generation-checked: once the event fires or is
/// cancelled, the handle goes stale and [`Sim::cancel`] /
/// [`Sim::reschedule`] on it return `false` instead of touching whatever
/// event reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Identifier of a registered [`EventHandler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub(crate) u32);

/// A component that receives typed events.
///
/// Register once with [`Sim::register_handler`], then schedule against the
/// returned [`HandlerId`] with an argument word encoding whatever the
/// handler needs (a core index, a slab slot, ...). Handlers use `&self`
/// with interior mutability, like every other simulation component.
pub trait EventHandler {
    /// An event scheduled for this handler fired at `sim.now()`.
    fn on_event(&self, sim: &mut Sim, arg: u64);
}

/// The boxed-closure fallback payload.
pub type ClosureFn = Box<dyn FnOnce(&mut Sim)>;
/// An already-boxed one-shot callback taking an argument word.
pub type OnceFn = Box<dyn FnOnce(&mut Sim, u64)>;

/// Payload of a scheduled event.
pub(crate) enum EventKind {
    /// Free slot (on the slab free list).
    Vacant,
    /// Boxed-closure fallback.
    Closure(ClosureFn),
    /// Registered handler + argument word: allocation-free.
    Handler { handler: HandlerId, arg: u64 },
    /// Pre-boxed one-shot callback + argument word.
    Once { f: OnceFn, arg: u64 },
}

const NO_POS: u32 = u32::MAX;

/// One slab slot: ordering key, generation, heap position, provenance,
/// payload.
struct Slot {
    at: SimTime,
    seq: u64,
    gen: u32,
    pos: u32,
    /// Node id of the event executing when this one was scheduled (0 =
    /// scheduled outside dispatch). Carried for causal capture
    /// ([`crate::causal`]); dead weight of one word when disabled.
    parent: u64,
    kind: EventKind,
}

/// Indexed four-ary min-heap over a slot slab.
pub(crate) struct EventQueue {
    /// Heap of slot indices, ordered by the slots' `(at, seq)` keys.
    heap: Vec<u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue { heap: Vec::new(), slots: Vec::new(), free: Vec::new() }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    fn key(&self, slot: u32) -> (SimTime, u64) {
        let s = &self.slots[slot as usize];
        (s.at, s.seq)
    }

    pub(crate) fn insert(
        &mut self,
        at: SimTime,
        seq: u64,
        parent: u64,
        kind: EventKind,
    ) -> EventId {
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.at = at;
                s.seq = seq;
                s.parent = parent;
                s.kind = kind;
                slot
            }
            None => {
                self.slots.push(Slot { at, seq, gen: 0, pos: NO_POS, parent, kind });
                (self.slots.len() - 1) as u32
            }
        };
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventId { slot, gen: self.slots[slot as usize].gen }
    }

    /// Whether `id` still refers to a pending event.
    pub(crate) fn contains(&self, id: EventId) -> bool {
        self.slots.get(id.slot as usize).is_some_and(|s| s.gen == id.gen && s.pos != NO_POS)
    }

    /// Remove the event `id` refers to; `false` if it already fired or was
    /// cancelled (stale handle).
    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        if !self.contains(id) {
            return false;
        }
        let pos = self.slots[id.slot as usize].pos as usize;
        self.remove_at(pos);
        self.release(id.slot);
        true
    }

    /// Move the event `id` refers to so it fires at `(at, seq)`; `false`
    /// on a stale handle.
    pub(crate) fn reschedule(&mut self, id: EventId, at: SimTime, seq: u64) -> bool {
        if !self.contains(id) {
            return false;
        }
        {
            let s = &mut self.slots[id.slot as usize];
            s.at = at;
            s.seq = seq;
        }
        let pos = self.slots[id.slot as usize].pos as usize;
        self.sift_up(pos);
        let pos = self.slots[id.slot as usize].pos as usize;
        self.sift_down(pos);
        true
    }

    /// Pop the earliest event.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, EventKind)> {
        self.pop_if(SimTime::NEVER)
    }

    /// Fire time of the earliest pending event, without popping it.
    pub(crate) fn peek_at(&self) -> Option<SimTime> {
        self.heap.first().map(|&slot| self.slots[slot as usize].at)
    }

    /// Pop the earliest event (time, provenance parent, payload) if it
    /// fires at or before `deadline` — one root comparison, no separate
    /// peek.
    pub(crate) fn pop_if(&mut self, deadline: SimTime) -> Option<(SimTime, u64, EventKind)> {
        let &slot = self.heap.first()?;
        let at = self.slots[slot as usize].at;
        if at > deadline {
            return None;
        }
        self.remove_at(0);
        let parent = self.slots[slot as usize].parent;
        let kind = std::mem::replace(&mut self.slots[slot as usize].kind, EventKind::Vacant);
        self.release(slot);
        Some((at, parent, kind))
    }

    /// Detach the slot at heap position `pos`, restoring heap order.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos < self.heap.len() {
            let moved = self.heap[pos];
            self.slots[moved as usize].pos = pos as u32;
            self.sift_down(pos);
            // If sift_down left it in place it may still belong higher up.
            let now_at = self.slots[moved as usize].pos as usize;
            self.sift_up(now_at);
        }
    }

    /// Return `slot` to the free list with a bumped generation.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.pos = NO_POS;
        self.free.push(slot);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.key(self.heap[parent]) <= self.key(self.heap[i]) {
                break;
            }
            self.swap_pos(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = 4 * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut min = first;
            let mut min_key = self.key(self.heap[first]);
            for c in first + 1..last {
                let k = self.key(self.heap[c]);
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if self.key(self.heap[i]) <= min_key {
                break;
            }
            self.swap_pos(i, min);
            i = min;
        }
    }

    #[inline]
    fn swap_pos(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].pos = a as u32;
        self.slots[self.heap[b] as usize].pos = b as u32;
    }
}

/// Registry of typed-event handlers owned by the [`Sim`].
pub(crate) struct HandlerTable {
    handlers: Vec<Rc<dyn EventHandler>>,
}

impl HandlerTable {
    pub(crate) fn new() -> Self {
        HandlerTable { handlers: Vec::new() }
    }

    pub(crate) fn register(&mut self, h: Rc<dyn EventHandler>) -> HandlerId {
        let id = HandlerId(u32::try_from(self.handlers.len()).expect("too many handlers"));
        self.handlers.push(h);
        id
    }

    /// A clone of the handler (a refcount bump), so the caller can invoke
    /// it without borrowing the table.
    #[inline]
    pub(crate) fn get(&self, id: HandlerId) -> Rc<dyn EventHandler> {
        self.handlers[id.0 as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, _parent, kind)) = q.pop() {
            let seq = match kind {
                EventKind::Handler { arg, .. } => arg,
                _ => panic!("test uses handler events"),
            };
            out.push((at.as_nanos(), seq));
        }
        out
    }

    fn handler_event(seq: u64) -> EventKind {
        EventKind::Handler { handler: HandlerId(0), arg: seq }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        for (at, seq) in [(30u64, 0u64), (10, 1), (10, 2), (20, 3), (5, 4)] {
            q.insert(SimTime::from_nanos(at), seq, 0, handler_event(seq));
        }
        assert_eq!(drain(&mut q), vec![(5, 4), (10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn cancel_removes_and_invalidates_handle() {
        let mut q = EventQueue::new();
        let a = q.insert(SimTime::from_nanos(10), 0, 0, handler_event(0));
        let b = q.insert(SimTime::from_nanos(20), 1, 0, handler_event(1));
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel is a stale no-op");
        assert!(q.contains(b));
        assert_eq!(drain(&mut q), vec![(20, 1)]);
        assert!(!q.cancel(b), "fired events leave stale handles");
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_handles() {
        let mut q = EventQueue::new();
        let a = q.insert(SimTime::from_nanos(10), 0, 0, handler_event(0));
        assert!(q.cancel(a));
        // The freed slot is reused by the next insert...
        let b = q.insert(SimTime::from_nanos(30), 1, 0, handler_event(1));
        // ...but the old handle must not touch the new event.
        assert!(!q.cancel(a));
        assert!(!q.reschedule(a, SimTime::from_nanos(1), 2));
        assert!(q.contains(b));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reschedule_moves_both_directions() {
        let mut q = EventQueue::new();
        let a = q.insert(SimTime::from_nanos(50), 0, 0, handler_event(0));
        q.insert(SimTime::from_nanos(20), 1, 0, handler_event(1));
        q.insert(SimTime::from_nanos(40), 2, 0, handler_event(2));
        assert!(q.reschedule(a, SimTime::from_nanos(10), 3));
        let c = q.insert(SimTime::from_nanos(15), 4, 0, handler_event(4));
        assert!(q.reschedule(c, SimTime::from_nanos(60), 5));
        assert_eq!(drain(&mut q), vec![(10, 0), (20, 1), (40, 2), (60, 4)]);
    }

    #[test]
    fn pop_if_respects_deadline_with_one_comparison() {
        let mut q = EventQueue::new();
        q.insert(SimTime::from_nanos(10), 0, 0, handler_event(0));
        q.insert(SimTime::from_nanos(30), 1, 0, handler_event(1));
        assert!(q.pop_if(SimTime::from_nanos(20)).is_some());
        assert!(q.pop_if(SimTime::from_nanos(20)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn stress_against_sorted_reference() {
        // Deterministic mixed insert/pop churn; compare against a sort.
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x243F6A8885A308D3u64; // pi digits; fixed seed
        let mut seq = 0u64;
        let mut popped = Vec::new();
        for round in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let at = (x >> 33) % 1000;
            q.insert(SimTime::from_nanos(at), seq, 0, handler_event(seq));
            expect.push((at, seq));
            seq += 1;
            if round % 3 == 0 {
                if let Some((at, _, EventKind::Handler { arg, .. })) = q.pop() {
                    popped.push((at.as_nanos(), arg));
                }
            }
        }
        popped.extend(drain(&mut q));
        // Popping interleaved with inserts is not a global sort, but the
        // final multiset and per-pop local minimality must match.
        expect.sort_unstable();
        let mut got = popped.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}
