//! Lock models: the coarse-grained blocking lock (MPI/UCX `ucp_progress`)
//! and the fine-grained try-lock (LCI progress engine).

use std::collections::{HashMap, VecDeque};

use crate::causal::{self, MarkKind};
use crate::probe;
use crate::time::SimTime;

/// Result of [`SimTryLock::try_acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryAcquire {
    /// The lock was free; the caller holds it until `until`.
    Acquired {
        /// Instant the caller's critical section ends.
        until: SimTime,
    },
    /// The lock is held; caller should do something else and maybe retry.
    Busy {
        /// Instant the current holder releases.
        free_at: SimTime,
    },
}

/// A *blocking* mutex with convoy behaviour, modeled in virtual time.
///
/// This reproduces the pathology the paper profiles in §5: Octo-Tiger with
/// `mpi_i` on the 128-core Expanse nodes "spent the vast majority of time
/// inside the `MPI_Test` function, spinning on the blocking lock of the
/// `ucp_progress` function". Each acquisition pays a handoff cost, and the
/// handoff gets more expensive as more cores pile up behind the lock
/// (waking a parked thread, re-warming its cache). Throughput through the
/// critical section therefore *degrades* as pressure rises — giving the
/// characteristic rise-then-fall message-rate curve of the `mpi` variants
/// (Fig. 1) rather than a flat plateau.
///
/// Because critical-section durations are known when the holder enters,
/// the lock can be simulated time-based: `acquire` immediately computes
/// when the caller will be granted the lock and when it will release it.
/// The caller's simulated core is busy (spinning/parked) for the whole
/// wait.
#[derive(Debug)]
pub struct SimLock {
    name: &'static str,
    next_free: SimTime,
    /// Completion times of currently-granted critical sections, used to
    /// count how many cores are queued at a given instant.
    grants: VecDeque<SimTime>,
    /// Per-core end of the previous grant: a core cannot request the lock
    /// again before its previous critical section finished, no matter how
    /// many operations its current event batches together.
    core_last_end: HashMap<usize, SimTime>,
    base_handoff_ns: u64,
    per_waiter_ns: u64,
    acquisitions: u64,
    contended: u64,
    total_wait_ns: u64,
}

/// Outcome of [`SimLock::acquire`]: when the critical section runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Instant the caller obtains the lock (its core spins until then).
    pub start: SimTime,
    /// Instant the caller releases the lock (`start + hold`).
    pub end: SimTime,
    /// Number of earlier holders/waiters the caller queued behind.
    pub queued_behind: usize,
}

impl SimLock {
    /// Create a blocking lock. `base_handoff_ns` is paid on every contended
    /// acquisition; `per_waiter_ns` is added per core already queued.
    pub fn new(name: &'static str, base_handoff_ns: u64, per_waiter_ns: u64) -> Self {
        SimLock {
            name,
            next_free: SimTime::ZERO,
            grants: VecDeque::new(),
            core_last_end: HashMap::new(),
            base_handoff_ns,
            per_waiter_ns,
            acquisitions: 0,
            contended: 0,
            total_wait_ns: 0,
        }
    }

    /// Name given at construction (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&front) = self.grants.front() {
            if front <= now {
                self.grants.pop_front();
            } else {
                break;
            }
        }
    }

    /// Acquire from `core` at `now`, holding for `hold_ns`. The caller's
    /// core must be treated as busy from `now` until `Grant::end`. The
    /// request time is clamped to the end of this core's previous grant
    /// (one core, one outstanding lock slot).
    pub fn acquire(&mut self, core: usize, now: SimTime, hold_ns: u64) -> Grant {
        let now = now.max(self.core_last_end.get(&core).copied().unwrap_or(SimTime::ZERO));
        self.expire(now);
        let queued = self.grants.len();
        let contended = self.next_free > now;
        let handoff = if contended {
            self.contended += 1;
            self.base_handoff_ns + self.per_waiter_ns * queued as u64
        } else {
            0
        };
        let start = now.max(self.next_free) + handoff;
        let end = start + hold_ns;
        self.next_free = end;
        self.grants.push_back(end);
        self.acquisitions += 1;
        self.total_wait_ns += start - now;
        self.core_last_end.insert(core, end);
        probe::emit(|p| p.lock_wait(self.name, core, now, start - now, hold_ns, contended));
        causal::mark(self.name, MarkKind::Wait, now, start, 0);
        causal::mark(self.name, MarkKind::Hold, start, end, 0);
        Grant { start, end, queued_behind: queued }
    }

    /// Earliest instant the lock becomes free, as of the last acquisition.
    pub fn free_at(&self) -> SimTime {
        self.next_free
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquisitions that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended
    }

    /// Mean wait (spin) per acquisition, ns.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.total_wait_ns as f64 / self.acquisitions as f64
        }
    }
}

/// A fine-grained try-lock: never blocks, never convoys.
///
/// LCI "uses atomic operations and fine-grained try locks extensively
/// instead of coarse-grained blocking locks" (§2.1). A failed try returns
/// immediately with the holder's release time so the caller can go do
/// other work — exactly how the thread-safe LCI progress function behaves.
#[derive(Debug)]
pub struct SimTryLock {
    name: &'static str,
    next_free: SimTime,
    acquisitions: u64,
    failures: u64,
}

impl SimTryLock {
    /// Create a try-lock.
    pub fn new(name: &'static str) -> Self {
        SimTryLock { name, next_free: SimTime::ZERO, acquisitions: 0, failures: 0 }
    }

    /// Name given at construction (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attempt to take the lock at `now` for `hold_ns`.
    pub fn try_acquire(&mut self, now: SimTime, hold_ns: u64) -> TryAcquire {
        if self.next_free <= now {
            let until = now + hold_ns;
            self.next_free = until;
            self.acquisitions += 1;
            probe::emit(|p| p.try_lock(self.name, now, true, hold_ns));
            causal::mark(self.name, MarkKind::Hold, now, until, 0);
            TryAcquire::Acquired { until }
        } else {
            self.failures += 1;
            probe::emit(|p| p.try_lock(self.name, now, false, 0));
            TryAcquire::Busy { free_at: self.next_free }
        }
    }

    /// Extend the current hold (holder only): used when the critical
    /// section turns out longer than first charged.
    pub fn extend(&mut self, until: SimTime) {
        debug_assert!(until >= self.next_free);
        self.next_free = until;
    }

    /// Successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Failed attempts.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Fraction of attempts that failed.
    pub fn failure_ratio(&self) -> f64 {
        let total = self.acquisitions + self.failures;
        if total == 0 {
            0.0
        } else {
            self.failures as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_is_free() {
        let mut l = SimLock::new("ucp", 500, 200);
        let g = l.acquire(0, SimTime::from_nanos(10), 100);
        assert_eq!(g.start, SimTime::from_nanos(10));
        assert_eq!(g.end, SimTime::from_nanos(110));
        assert_eq!(g.queued_behind, 0);
        assert_eq!(l.contended(), 0);
    }

    #[test]
    fn contended_acquire_pays_handoff() {
        let mut l = SimLock::new("ucp", 500, 200);
        let g1 = l.acquire(0, SimTime::ZERO, 100);
        let g2 = l.acquire(1, SimTime::from_nanos(50), 100);
        // queued behind 1 holder: start = 100 (free) + 500 + 200*1
        assert_eq!(g2.start, SimTime::from_nanos(800));
        assert_eq!(g2.queued_behind, 1);
        assert!(g2.start > g1.end);
        assert_eq!(l.contended(), 1);
    }

    #[test]
    fn convoy_grows_with_waiters() {
        let mut l = SimLock::new("ucp", 100, 100);
        l.acquire(0, SimTime::ZERO, 1000);
        let g2 = l.acquire(1, SimTime::ZERO, 1000);
        let g3 = l.acquire(2, SimTime::ZERO, 1000);
        let g4 = l.acquire(3, SimTime::ZERO, 1000);
        let w2 = g2.start.as_nanos();
        let w3 = g3.start.as_nanos() - g2.end.as_nanos();
        let w4 = g4.start.as_nanos() - g3.end.as_nanos();
        // Per-acquisition handoff overhead strictly increases with queue depth.
        assert!(w3 > w2 - 1000 || w4 > w3, "handoff should grow: {w2} {w3} {w4}");
        assert_eq!(g4.queued_behind, 3);
    }

    #[test]
    fn lock_frees_after_holders_finish() {
        let mut l = SimLock::new("ucp", 500, 200);
        let g = l.acquire(0, SimTime::ZERO, 100);
        // Well after the hold ends the lock is uncontended again.
        let g2 = l.acquire(1, g.end + 10_000, 100);
        assert_eq!(g2.queued_behind, 0);
        assert_eq!(g2.start, g.end + 10_000);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Critical sections never overlap: each grant starts at or
            /// after the previous grant's end.
            #[test]
            fn grants_never_overlap(
                reqs in proptest::collection::vec((0u64..5_000, 0usize..8, 1u64..2_000), 1..100)
            ) {
                let mut l = SimLock::new("prop", 120, 40);
                let mut now = SimTime::ZERO;
                let mut prev_end = SimTime::ZERO;
                for (gap, core, hold) in reqs {
                    now = now + gap;
                    let g = l.acquire(core, now, hold);
                    prop_assert!(g.start >= prev_end, "critical sections overlap");
                    prop_assert_eq!(g.end, g.start + hold);
                    prev_end = g.end;
                }
            }

            /// A core can never hold two outstanding grants: its next
            /// grant starts no earlier than its previous grant ended.
            #[test]
            fn per_core_grants_serialize(
                holds in proptest::collection::vec(1u64..1_000, 2..50)
            ) {
                let mut l = SimLock::new("prop", 50, 10);
                let mut last_end = SimTime::ZERO;
                for h in holds {
                    let g = l.acquire(3, SimTime::ZERO, h);
                    prop_assert!(g.start >= last_end);
                    last_end = g.end;
                }
            }
        }
    }

    #[test]
    fn trylock_success_and_failure() {
        let mut l = SimTryLock::new("progress");
        match l.try_acquire(SimTime::ZERO, 100) {
            TryAcquire::Acquired { until } => assert_eq!(until, SimTime::from_nanos(100)),
            _ => panic!("should acquire"),
        }
        match l.try_acquire(SimTime::from_nanos(50), 100) {
            TryAcquire::Busy { free_at } => assert_eq!(free_at, SimTime::from_nanos(100)),
            _ => panic!("should be busy"),
        }
        match l.try_acquire(SimTime::from_nanos(100), 100) {
            TryAcquire::Acquired { .. } => {}
            _ => panic!("should acquire after release"),
        }
        assert_eq!(l.acquisitions(), 2);
        assert_eq!(l.failures(), 1);
        assert!((l.failure_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }
}
