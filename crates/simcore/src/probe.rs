//! Contention instrumentation hook.
//!
//! [`SimLock`](crate::SimLock), [`SimTryLock`](crate::SimTryLock) and
//! [`SimResource`](crate::SimResource) report every acquisition/access
//! through an optional thread-local [`Probe`]. Nothing in simcore consumes
//! the data — an observability layer (the `telemetry` crate) installs a
//! probe to attribute wait vs. service time per named resource.
//!
//! The hook is pure observation: implementations must not touch the
//! simulation, and the emitting code never changes its timing based on
//! whether a probe is installed. With no probe installed the cost is one
//! thread-local borrow and a `None` check — no allocation, no dispatch.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;

/// Receiver of contention events from locks and resources.
pub trait Probe {
    /// A [`SimLock`](crate::SimLock) acquisition was granted.
    /// `wait_ns` is the spin/park time before the grant (including the
    /// convoy handoff), `hold_ns` the critical-section length.
    fn lock_wait(
        &self,
        name: &'static str,
        core: usize,
        now: SimTime,
        wait_ns: u64,
        hold_ns: u64,
        contended: bool,
    );

    /// A [`SimTryLock`](crate::SimTryLock) attempt. `hold_ns` is the
    /// charged critical section on success, 0 on failure.
    fn try_lock(&self, name: &'static str, now: SimTime, acquired: bool, hold_ns: u64);

    /// A [`SimResource`](crate::SimResource) access. `wait_ns` is the
    /// queueing delay before service began, `service_ns` the full service
    /// time (including any ownership-transfer penalty).
    fn resource_access(
        &self,
        name: &'static str,
        core: usize,
        now: SimTime,
        wait_ns: u64,
        service_ns: u64,
        transferred: bool,
    );
}

thread_local! {
    static PROBE: RefCell<Option<Rc<dyn Probe>>> = const { RefCell::new(None) };
}

/// Install `p` as this thread's probe (replacing any previous one).
pub fn install(p: Rc<dyn Probe>) {
    PROBE.with(|c| *c.borrow_mut() = Some(p));
}

/// Remove the installed probe, if any.
pub fn uninstall() {
    PROBE.with(|c| *c.borrow_mut() = None);
}

/// Whether a probe is currently installed on this thread.
pub fn installed() -> bool {
    PROBE.with(|c| c.borrow().is_some())
}

/// Run `f` against the installed probe; no-op when none is installed.
#[inline]
pub fn emit(f: impl FnOnce(&dyn Probe)) {
    PROBE.with(|c| {
        if let Some(p) = c.borrow().as_deref() {
            f(p)
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct CountProbe(Cell<u64>);
    impl Probe for CountProbe {
        fn lock_wait(&self, _: &'static str, _: usize, _: SimTime, _: u64, _: u64, _: bool) {
            self.0.set(self.0.get() + 1);
        }
        fn try_lock(&self, _: &'static str, _: SimTime, _: bool, _: u64) {
            self.0.set(self.0.get() + 1);
        }
        fn resource_access(&self, _: &'static str, _: usize, _: SimTime, _: u64, _: u64, _: bool) {
            self.0.set(self.0.get() + 1);
        }
    }

    #[test]
    fn install_emit_uninstall() {
        assert!(!installed());
        emit(|_| panic!("no probe installed"));
        let p = Rc::new(CountProbe(Cell::new(0)));
        install(p.clone());
        assert!(installed());
        emit(|probe| probe.try_lock("x", SimTime::ZERO, true, 1));
        assert_eq!(p.0.get(), 1);
        uninstall();
        assert!(!installed());
        emit(|_| panic!("probe not removed"));
    }
}
