//! Named statistic counters and simple online summaries.

use std::collections::BTreeMap;
use std::fmt;

/// A bag of named counters plus min/max/mean summaries.
///
/// Keys are `&'static str` so hot-path increments do no allocation. A
/// `BTreeMap` keeps report output deterministically ordered.
#[derive(Debug, Default)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
    summaries: BTreeMap<&'static str, Summary>,
}

/// Online min/max/sum/count summary of a sampled quantity.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Sum of squared samples (for variance).
    pub sum_sq: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, sum: 0.0, sum_sq: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Arithmetic mean of the samples (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance of the samples (0 if fewer than two).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        // Clamp: catastrophic cancellation can drive the estimate slightly
        // negative when all samples are (nearly) equal.
        (self.sum_sq / n - mean * mean).max(0.0)
    }

    /// Population standard deviation of the samples.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Fold `other` into `self`: the result summarizes the union of both
    /// sample sets.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Stats {
    /// Create an empty stats bag.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Add `n` to the counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Increment the counter `key` by one.
    #[inline]
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Read a counter (0 if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Record a sample into the summary `key`.
    pub fn sample(&mut self, key: &'static str, x: f64) {
        self.summaries.entry(key).or_default().record(x);
    }

    /// Read a summary, if any samples were recorded.
    pub fn summary(&self, key: &str) -> Option<&Summary> {
        self.summaries.get(key)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate summaries in key order.
    pub fn summaries(&self) -> impl Iterator<Item = (&'static str, &Summary)> + '_ {
        self.summaries.iter().map(|(k, v)| (*k, v))
    }

    /// Remove all counters and summaries.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.summaries.clear();
    }

    /// Fold `other` into `self`: counters add, summaries merge. Used to
    /// combine per-shard stats into one global bag after a sharded run;
    /// merging is order-independent, so any deterministic shard order
    /// yields the same result.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, s) in &other.summaries {
            self.summaries.entry(k).or_default().merge(s);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:40} {v}")?;
        }
        for (k, s) in &self.summaries {
            writeln!(
                f,
                "{k:40} n={} mean={:.3} min={:.3} max={:.3}",
                s.count,
                s.mean(),
                s.min,
                s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("x");
        s.add("x", 4);
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn summaries_track_min_max_mean() {
        let mut s = Stats::new();
        for x in [1.0, 2.0, 3.0] {
            s.sample("lat", x);
        }
        let sum = s.summary("lat").unwrap();
        assert_eq!(sum.count, 3);
        assert!((sum.mean() - 2.0).abs() < 1e-12);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 3.0);
    }

    #[test]
    fn summaries_expose_variance_and_iterate() {
        let mut s = Stats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.sample("lat", x);
        }
        s.sample("other", 1.0);
        let sum = s.summary("lat").unwrap();
        assert!((sum.variance() - 4.0).abs() < 1e-9);
        assert!((sum.stddev() - 2.0).abs() < 1e-9);
        let keys: Vec<_> = s.summaries().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["lat", "other"]);
        // Single sample: no spread.
        assert_eq!(s.summary("other").unwrap().stddev(), 0.0);
    }

    #[test]
    fn display_is_ordered_and_clear_resets() {
        let mut s = Stats::new();
        s.bump("b");
        s.bump("a");
        let text = s.to_string();
        assert!(text.find('a').unwrap() < text.find('b').unwrap());
        s.clear();
        assert_eq!(s.get("a"), 0);
    }
}
