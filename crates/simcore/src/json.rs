//! JSON string escaping — the single escaping helper shared by every
//! exporter in the workspace.
//!
//! Both `simcore::trace` (Chrome-trace span export) and the `telemetry`
//! crate's exporters (Chrome trace, reports, folded stacks) emit JSON by
//! hand because the build is fully offline. They all route string
//! literals through [`escape_json`] so there is exactly one place that
//! knows the escaping rules — and one round-trip contract with the
//! parser in `telemetry::json` (see the hostile-input round-trip tests
//! there).

use std::borrow::Cow;
use std::fmt::Write as _;

/// Escape a string for inclusion inside a JSON string literal.
///
/// Borrows when no escaping is needed (the common case for track/label
/// names), so callers pay no allocation unless the input actually contains
/// `"`, `\` or control characters.
pub fn escape_json(s: &str) -> Cow<'_, str> {
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to string"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_borrows_when_clean() {
        assert!(matches!(escape_json("loc0/core1"), Cow::Borrowed(_)));
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn multibyte_passes_through_unescaped() {
        assert_eq!(escape_json("héllo → 🌍"), "héllo → 🌍");
        // Mixed hostile + multibyte still only escapes what JSON requires.
        assert_eq!(escape_json("🌍\"\t"), "🌍\\\"\\t");
    }

    #[test]
    fn every_control_char_is_escaped() {
        for b in 0u32..0x20 {
            let s = char::from_u32(b).unwrap().to_string();
            let escaped = escape_json(&s);
            assert!(escaped.starts_with('\\'), "control {b:#x} not escaped: {escaped:?}");
        }
    }
}
