//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate is the execution substrate for the whole reproduction. The
//! paper ("The LCI parcelport of HPX", SC-W 2023) evaluates a network
//! software stack on two multi-core cluster nodes; its results are
//! throughput/latency consequences of contention on *software* resources
//! (blocking progress locks, matching tables, completion queues, shared
//! atomic counters). We reproduce those effects with a deterministic
//! discrete-event simulation (DES):
//!
//! * [`Sim`] owns a virtual nanosecond clock and an event heap. Events are
//!   closures ordered by `(time, sequence-number)`, so runs are exactly
//!   reproducible.
//! * [`CoreClock`] models a CPU core: work *charges* virtual time; a core is
//!   busy until its accumulated charges elapse.
//! * [`SimResource`] models a contended cache line / queue / table as a
//!   serialized service center: operations have a service time, concurrent
//!   accesses queue, and ownership migration between cores pays a transfer
//!   penalty. This is what makes "all worker threads call progress" saturate
//!   the progress engine exactly as the paper observes.
//! * [`SimLock`] models a *coarse-grained blocking lock* (the
//!   `ucp_progress` lock inside MPI/UCX) with a handoff convoy cost that
//!   grows with the number of waiters — reproducing the MPI parcelport
//!   collapse under high injection pressure. [`SimTryLock`] models the
//!   fine-grained try-locks LCI uses instead.
//! * [`CostModel`] centralizes every per-operation virtual-time charge so
//!   platform presets (SDSC Expanse, Rostam) are one value-set away.
//!
//! All protocol logic, codecs and application code built on top of this
//! engine are real, synchronously-executed Rust — only **time** is virtual.

pub mod causal;
pub mod cost;
pub mod event;
pub mod json;
pub mod lock;
pub mod probe;
pub mod resource;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use causal::CausalLog;
pub use cost::CostModel;
pub use event::{ClosureFn, EventHandler, EventId, HandlerId, OnceFn};
pub use json::escape_json;
pub use lock::{SimLock, SimTryLock, TryAcquire};
pub use probe::Probe;
pub use resource::SimResource;
pub use shard::{LaneCtx, LaneId, RunMode, RunReport, ShardActor, ShardEventId, ShardedSim};
pub use sim::Sim;
pub use stats::{Stats, Summary};
pub use time::SimTime;
pub use trace::{Span, Tracer};

/// A simulated CPU core's private clock.
///
/// A core executes one activity at a time; each activity charges virtual
/// time. `free_at` is the earliest instant the core can begin new work.
/// Higher layers (the AMT scheduler) drive cores with tick events: run one
/// piece of work, charge its cost, schedule the next tick at `free_at`.
#[derive(Debug, Clone)]
pub struct CoreClock {
    /// Stable identifier of this core within its locality.
    pub id: usize,
    /// Earliest virtual time at which the core can start new work.
    pub free_at: SimTime,
    /// Total virtual time this core has spent doing charged work.
    pub busy_ns: u64,
    /// Number of work items executed.
    pub work_items: u64,
}

impl CoreClock {
    /// Create a core that is free immediately.
    pub fn new(id: usize) -> Self {
        CoreClock { id, free_at: SimTime::ZERO, busy_ns: 0, work_items: 0 }
    }

    /// Begin a work item at `now`; returns the start time,
    /// i.e. `max(now, free_at)`.
    pub fn begin(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.free_at);
        self.work_items += 1;
        start
    }

    /// Charge `charged_ns` of work ending at `end`; marks the core busy
    /// until `end`.
    pub fn complete(&mut self, end: SimTime, charged_ns: u64) {
        debug_assert!(end >= self.free_at, "core time must be monotone");
        self.busy_ns += charged_ns;
        self.free_at = end;
    }

    /// Convenience: run a work item starting no earlier than `now`, lasting
    /// `cost` ns; returns the completion time.
    pub fn charge(&mut self, now: SimTime, cost: u64) -> SimTime {
        let start = self.begin(now);
        let end = start + cost;
        self.complete(end, cost);
        end
    }

    /// Utilization over the window `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            self.busy_ns as f64 / now.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_clock_charges_accumulate() {
        let mut c = CoreClock::new(0);
        let t1 = c.charge(SimTime::from_nanos(100), 50);
        assert_eq!(t1, SimTime::from_nanos(150));
        // Starting "earlier" than free_at waits for the core.
        let t2 = c.charge(SimTime::from_nanos(120), 30);
        assert_eq!(t2, SimTime::from_nanos(180));
        assert_eq!(c.busy_ns, 80);
        assert_eq!(c.work_items, 2);
    }

    #[test]
    fn core_clock_utilization() {
        let mut c = CoreClock::new(1);
        c.charge(SimTime::ZERO, 500);
        assert!((c.utilization(SimTime::from_nanos(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(c.utilization(SimTime::ZERO), 0.0);
    }
}
