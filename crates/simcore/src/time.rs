//! Virtual time: a nanosecond-resolution simulated clock value.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the run.
///
/// `SimTime` is a newtype over `u64`, totally ordered, and saturating on
/// subtraction (the simulation never produces negative instants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant — used as "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Nanoseconds elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advance the instant by `rhs` nanoseconds.
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// Nanoseconds between two instants, saturating at zero.
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(3), SimTime::from_nanos(3_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_nanos(2_000_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn arithmetic_is_saturating() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b - a, 20);
        assert_eq!(a - b, 0);
        assert_eq!(SimTime::NEVER + 5, SimTime::NEVER);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(5);
        assert_eq!(a.since(SimTime::from_nanos(2)), 3);
        assert_eq!(a.since(SimTime::from_nanos(9)), 0);
    }
}
