//! The event loop: a deterministic time-ordered queue of typed events.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{EventHandler, EventId, EventKind, EventQueue, HandlerId, HandlerTable, OnceFn};
use crate::stats::Stats;
use crate::time::SimTime;

/// The discrete-event simulator: virtual clock + event queue + seeded RNG +
/// named statistic counters.
///
/// Events are ordered by `(time, sequence-number)` — equal timestamps fire
/// in scheduling order — which makes every run bit-for-bit reproducible
/// for a given seed and workload. The queue is an indexed four-ary
/// min-heap (see [`crate::event`]), so pending events can be
/// [cancelled](Sim::cancel) or [rescheduled](Sim::reschedule) in O(log n)
/// instead of firing as dead no-ops.
///
/// Components live outside the `Sim` (usually behind `Rc<RefCell<_>>`) and
/// communicate by scheduling events. The general-purpose form is a boxed
/// closure:
///
/// ```
/// use simcore::{Sim, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(42);
/// let hits = Rc::new(Cell::new(0));
/// let h = hits.clone();
/// sim.schedule_in(1_000, move |_sim| h.set(h.get() + 1));
/// sim.run();
/// assert_eq!(hits.get(), 1);
/// assert_eq!(sim.now(), SimTime::from_nanos(1_000));
/// ```
///
/// Hot paths (core ticks, packet deliveries) instead register an
/// [`EventHandler`] once and schedule `(handler, arg)` pairs with
/// [`Sim::schedule_event_at`] — no allocation per event.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: EventQueue,
    handlers: HandlerTable,
    /// Deterministic RNG for any randomized model decisions.
    pub rng: StdRng,
    /// Named counters collected during the run.
    pub stats: Stats,
    executed: u64,
    /// Node id of the event currently being dispatched
    /// (= `node_base + executed` at dispatch start; 0 outside dispatch).
    /// Recorded as the provenance parent of every event scheduled from
    /// inside it.
    current: u64,
    /// Offset added to the 1-based executed counter when minting node
    /// ids. 0 for a standalone `Sim` (node ids are exactly the executed
    /// counter — the legacy namespace); a federated lane sets this to
    /// `lane << 44` so node ids are globally unique across lanes and
    /// per-lane causal logs can be merged without collisions.
    node_base: u64,
}

impl Sim {
    /// Create a simulator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(),
            handlers: HandlerTable::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: Stats::new(),
            executed: 0,
            current: 0,
            node_base: 0,
        }
    }

    /// Namespace this simulator's provenance node ids: every executed
    /// event gets id `base + executed`. Must be set before any event
    /// runs; used by federated lanes (`base = lane << 44`) so per-lane
    /// causal logs merge without id collisions. The default base 0
    /// preserves the legacy ids exactly.
    pub fn set_node_base(&mut self, base: u64) {
        assert_eq!(self.executed, 0, "node base must be set before any event executes");
        self.node_base = base;
    }

    /// Fire time of the earliest pending event, if any.
    #[inline]
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek_at()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    #[inline]
    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Register a typed-event handler; the returned id is valid for this
    /// simulator's whole lifetime.
    pub fn register_handler(&mut self, h: Rc<dyn EventHandler>) -> HandlerId {
        self.handlers.register(h)
    }

    /// Schedule `f` to run at absolute virtual time `at` (clamped to `now`
    /// if it is in the past). Returns the event's id.
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, f: F) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.queue.insert(at, seq, self.current, EventKind::Closure(Box::new(f)))
    }

    /// Schedule `f` to run `delay_ns` nanoseconds from now.
    pub fn schedule_in<F: FnOnce(&mut Sim) + 'static>(&mut self, delay_ns: u64, f: F) -> EventId {
        self.schedule_at(self.now + delay_ns, f)
    }

    /// Schedule a typed event for `handler` at `at` (clamped to `now`).
    /// This is the allocation-free hot path: the event is two words in a
    /// reused slab slot.
    pub fn schedule_event_at(&mut self, at: SimTime, handler: HandlerId, arg: u64) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.queue.insert(at, seq, self.current, EventKind::Handler { handler, arg })
    }

    /// Schedule a typed event for `handler`, `delay_ns` from now.
    pub fn schedule_event_in(&mut self, delay_ns: u64, handler: HandlerId, arg: u64) -> EventId {
        self.schedule_event_at(self.now + delay_ns, handler, arg)
    }

    /// Schedule an already-boxed one-shot callback at `at` (clamped to
    /// `now`). The box is moved, not re-wrapped: scheduling allocates
    /// nothing new.
    pub fn schedule_once_at(&mut self, at: SimTime, f: OnceFn, arg: u64) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.queue.insert(at, seq, self.current, EventKind::Once { f, arg })
    }

    /// Cancel a pending event. Returns `false` if the handle is stale
    /// (the event already fired or was cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Move a pending event to fire at `at` (clamped to `now`). The event
    /// is re-sequenced as if newly scheduled, so ties at the new time fire
    /// after events already scheduled there — identical ordering to
    /// cancelling and scheduling afresh, without the churn. Returns
    /// `false` on a stale handle.
    pub fn reschedule(&mut self, id: EventId, at: SimTime) -> bool {
        let at = at.max(self.now);
        let seq = self.next_seq();
        self.queue.reschedule(id, at, seq)
    }

    /// Whether `id` refers to an event still pending.
    pub fn is_scheduled(&self, id: EventId) -> bool {
        self.queue.contains(id)
    }

    #[inline]
    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Closure(f) => f(self),
            EventKind::Handler { handler, arg } => {
                let h = self.handlers.get(handler);
                h.on_event(self, arg);
            }
            EventKind::Once { f, arg } => f(self, arg),
            EventKind::Vacant => unreachable!("vacant slot in the heap"),
        }
    }

    /// Begin dispatching an event scheduled by `parent` at time `at`:
    /// advance the clock, mint the node id, record the provenance edge if
    /// a causal collector is installed. Returns whether one is (so the
    /// caller can close the node after dispatch).
    #[inline]
    fn begin_event(&mut self, at: SimTime, parent: u64) -> bool {
        debug_assert!(at >= self.now, "time must not go backwards");
        self.now = at;
        self.executed += 1;
        self.current = self.node_base + self.executed;
        let instrumented = crate::causal::installed();
        if instrumented {
            crate::causal::on_execute(self.current, at.as_nanos(), parent);
        }
        instrumented
    }

    #[inline]
    fn end_event(&mut self, instrumented: bool) {
        self.current = 0;
        if instrumented {
            crate::causal::end_execute();
        }
    }

    /// Run a single event; returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, parent, kind)) => {
                let instrumented = self.begin_event(at, parent);
                self.dispatch(kind);
                self.end_event(instrumented);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the clock reaches `deadline` (events at exactly `deadline`
    /// still fire) or the queue empties. Returns the number of events run.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        // One root comparison per event: the pop is conditional on the
        // deadline rather than a peek followed by a separate pop.
        while let Some((at, parent, kind)) = self.queue.pop_if(deadline) {
            let instrumented = self.begin_event(at, parent);
            self.dispatch(kind);
            self.end_event(instrumented);
            n += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Run until `pred` returns true (checked after every event) or the
    /// queue empties. Returns whether the predicate was satisfied.
    pub fn run_while<P: FnMut(&Sim) -> bool>(&mut self, mut pending: P) -> bool {
        loop {
            // Empty-queue short-circuit first: the emptiness test is one
            // load, the predicate is an arbitrary user closure.
            if self.queue.is_empty() {
                return !pending(self);
            }
            if !pending(self) {
                return true;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (delay, label) in [(300u64, 'c'), (100, 'a'), (200, 'b')] {
            let o = order.clone();
            sim.schedule_in(delay, move |_| o.borrow_mut().push(label));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in ['x', 'y', 'z'] {
            let o = order.clone();
            sim.schedule_at(SimTime::from_nanos(50), move |_| o.borrow_mut().push(label));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        sim.schedule_in(10, move |sim| {
            let h2 = h.clone();
            sim.schedule_in(5, move |_| *h2.borrow_mut() += 1);
        });
        sim.run();
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(15));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        for d in [10u64, 20, 30] {
            let h = hits.clone();
            sim.schedule_in(d, move |_| *h.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        // Clock advances to the deadline even when no event lands on it.
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(sim.now(), SimTime::from_nanos(25));
        sim.run();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.schedule_in(100, move |sim| {
            let h2 = h.clone();
            // "at 10ns" is already in the past here; must fire at now=100.
            sim.schedule_at(SimTime::from_nanos(10), move |sim| {
                h2.borrow_mut().push(sim.now());
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), vec![SimTime::from_nanos(100)]);
    }

    #[test]
    fn deterministic_rng() {
        use rand::Rng;
        let mut a = Sim::new(7);
        let mut b = Sim::new(7);
        let xa: u64 = a.rng.gen();
        let xb: u64 = b.rng.gen();
        assert_eq!(xa, xb);
    }

    /// Records the argument words of every event it receives.
    struct Recorder {
        seen: RefCell<Vec<(SimTime, u64)>>,
    }

    impl EventHandler for Recorder {
        fn on_event(&self, sim: &mut Sim, arg: u64) {
            self.seen.borrow_mut().push((sim.now(), arg));
        }
    }

    #[test]
    fn handler_events_fire_in_order_with_closures() {
        let mut sim = Sim::new(0);
        let rec = Rc::new(Recorder { seen: RefCell::new(Vec::new()) });
        let h = sim.register_handler(rec.clone());
        let order = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_event_in(20, h, 1);
        let o = order.clone();
        sim.schedule_in(10, move |_| o.borrow_mut().push('c'));
        sim.schedule_event_in(10, h, 2); // same time as the closure: after it
        sim.run();
        assert_eq!(*order.borrow(), vec!['c']);
        assert_eq!(
            *rec.seen.borrow(),
            vec![(SimTime::from_nanos(10), 2), (SimTime::from_nanos(20), 1)]
        );
    }

    #[test]
    fn once_events_receive_their_argument() {
        let mut sim = Sim::new(0);
        let got = Rc::new(Cell::new(0u64));
        let g = got.clone();
        let f: crate::event::OnceFn = Box::new(move |_sim, arg| g.set(arg));
        sim.schedule_once_at(SimTime::from_nanos(5), f, 77);
        sim.run();
        assert_eq!(got.get(), 77);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim = Sim::new(0);
        let rec = Rc::new(Recorder { seen: RefCell::new(Vec::new()) });
        let h = sim.register_handler(rec.clone());
        let a = sim.schedule_event_in(10, h, 1);
        sim.schedule_event_in(20, h, 2);
        assert!(sim.is_scheduled(a));
        assert!(sim.cancel(a));
        assert!(!sim.is_scheduled(a));
        assert!(!sim.cancel(a), "double cancel is a stale no-op");
        sim.run();
        assert_eq!(*rec.seen.borrow(), vec![(SimTime::from_nanos(20), 2)]);
        assert_eq!(sim.events_executed(), 1, "cancelled events never execute");
    }

    #[test]
    fn reschedule_matches_cancel_plus_fresh_schedule_ordering() {
        // Two sims: one reschedules, the other cancels + schedules anew.
        // Tie-breaking at the destination time must be identical.
        let run = |reschedule: bool| {
            let mut sim = Sim::new(0);
            let rec = Rc::new(Recorder { seen: RefCell::new(Vec::new()) });
            let h = sim.register_handler(rec.clone());
            let a = sim.schedule_event_in(100, h, 1);
            sim.schedule_event_in(40, h, 2); // pre-existing event at t=40
            if reschedule {
                assert!(sim.reschedule(a, SimTime::from_nanos(40)));
            } else {
                assert!(sim.cancel(a));
                sim.schedule_event_in(40, h, 1);
            }
            sim.run();
            let seen = rec.seen.borrow().clone();
            seen
        };
        assert_eq!(run(true), run(false));
        assert_eq!(
            run(true),
            vec![(SimTime::from_nanos(40), 2), (SimTime::from_nanos(40), 1)],
            "rescheduled event is re-sequenced behind existing ties"
        );
    }

    #[test]
    fn reschedule_into_the_past_clamps_to_now() {
        let mut sim = Sim::new(0);
        let rec = Rc::new(Recorder { seen: RefCell::new(Vec::new()) });
        let h = sim.register_handler(rec.clone());
        sim.schedule_in(50, move |_| {});
        let a = sim.schedule_event_in(100, h, 9);
        sim.run_until(SimTime::from_nanos(60));
        assert!(sim.reschedule(a, SimTime::from_nanos(10)));
        sim.run();
        assert_eq!(*rec.seen.borrow(), vec![(SimTime::from_nanos(60), 9)]);
    }

    #[test]
    fn run_while_short_circuits_on_empty_queue() {
        let mut sim = Sim::new(0);
        // Predicate still true when the queue drains: not satisfied.
        sim.schedule_in(10, |_| {});
        assert!(!sim.run_while(|_| true));
        // Predicate already false on an empty queue: satisfied.
        assert!(sim.run_while(|_| false));
    }
}
