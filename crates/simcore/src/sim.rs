//! The event loop: a deterministic time-ordered heap of scheduled closures.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::Stats;
use crate::time::SimTime;

/// Identifier of a scheduled event (its insertion sequence number).
///
/// Events with equal timestamps fire in insertion order, which makes every
/// run bit-for-bit reproducible for a given seed and workload.
pub type EventId = u64;

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: EventId,
    f: EventFn,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulator: virtual clock + event heap + seeded RNG +
/// named statistic counters.
///
/// Components live outside the `Sim` (usually behind `Rc<RefCell<_>>`) and
/// communicate by scheduling closures:
///
/// ```
/// use simcore::{Sim, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(42);
/// let hits = Rc::new(Cell::new(0));
/// let h = hits.clone();
/// sim.schedule_in(1_000, move |_sim| h.set(h.get() + 1));
/// sim.run();
/// assert_eq!(hits.get(), 1);
/// assert_eq!(sim.now(), SimTime::from_nanos(1_000));
/// ```
pub struct Sim {
    now: SimTime,
    seq: EventId,
    heap: BinaryHeap<Reverse<Entry>>,
    /// Deterministic RNG for any randomized model decisions.
    pub rng: StdRng,
    /// Named counters collected during the run.
    pub stats: Stats,
    executed: u64,
}

impl Sim {
    /// Create a simulator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: Stats::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` to run at absolute virtual time `at` (clamped to `now`
    /// if it is in the past). Returns the event's id.
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, f: F) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, f: Box::new(f) }));
        seq
    }

    /// Schedule `f` to run `delay_ns` nanoseconds from now.
    pub fn schedule_in<F: FnOnce(&mut Sim) + 'static>(&mut self, delay_ns: u64, f: F) -> EventId {
        self.schedule_at(self.now + delay_ns, f)
    }

    /// Run a single event; returns `false` if the heap is empty.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            Some(Reverse(e)) => {
                debug_assert!(e.at >= self.now, "time must not go backwards");
                self.now = e.at;
                self.executed += 1;
                (e.f)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event heap is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the clock reaches `deadline` (events at exactly `deadline`
    /// still fire) or the heap empties. Returns the number of events run.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Run until `pred` returns true (checked after every event) or the heap
    /// empties. Returns whether the predicate was satisfied.
    pub fn run_while<P: FnMut(&Sim) -> bool>(&mut self, mut pending: P) -> bool {
        while pending(self) {
            if !self.step() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (delay, label) in [(300u64, 'c'), (100, 'a'), (200, 'b')] {
            let o = order.clone();
            sim.schedule_in(delay, move |_| o.borrow_mut().push(label));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in ['x', 'y', 'z'] {
            let o = order.clone();
            sim.schedule_at(SimTime::from_nanos(50), move |_| o.borrow_mut().push(label));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        sim.schedule_in(10, move |sim| {
            let h2 = h.clone();
            sim.schedule_in(5, move |_| *h2.borrow_mut() += 1);
        });
        sim.run();
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(15));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        for d in [10u64, 20, 30] {
            let h = hits.clone();
            sim.schedule_in(d, move |_| *h.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        // Clock advances to the deadline even when no event lands on it.
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(sim.now(), SimTime::from_nanos(25));
        sim.run();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.schedule_in(100, move |sim| {
            let h2 = h.clone();
            // "at 10ns" is already in the past here; must fire at now=100.
            sim.schedule_at(SimTime::from_nanos(10), move |sim| {
                h2.borrow_mut().push(sim.now());
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), vec![SimTime::from_nanos(100)]);
    }

    #[test]
    fn deterministic_rng() {
        use rand::Rng;
        let mut a = Sim::new(7);
        let mut b = Sim::new(7);
        let xa: u64 = a.rng.gen();
        let xb: u64 = b.rng.gen();
        assert_eq!(xa, xb);
    }
}
