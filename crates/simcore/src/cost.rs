//! The cost model: every per-operation virtual-time charge in one place.
//!
//! All magnitudes are nanoseconds of simulated CPU time. Defaults are
//! calibrated so the reproduced stack lands in the same regime as the
//! paper's measurements on SDSC Expanse (LCI baseline 8 B peak message rate
//! ~750 K/s, `mt` variants ~285 K/s, `sendrecv` ~3.5x below `putsendrecv`,
//! MPI collapsing under injection pressure). Absolute values are *model
//! parameters*, not claims about any specific CPU; EXPERIMENTS.md compares
//! shapes, not absolute numbers.

/// Per-operation virtual-time charges (ns) shared by every layer.
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- generic CPU ----
    /// Creating a task object and enqueueing it on a scheduler queue.
    pub task_spawn: u64,
    /// Popping a task from a scheduler queue and setting up its frame.
    pub task_schedule: u64,
    /// Cost of one failed/empty poll of any queue (scheduler idle loop).
    pub idle_poll: u64,
    /// Small heap allocation / deallocation.
    pub alloc: u64,
    /// One uncontended atomic RMW (fetch_add etc.).
    pub atomic_op: u64,
    /// Moving a contended cache line between cores (fed to `SimResource`).
    pub cacheline_transfer: u64,
    /// Copying memory, per byte (0.05 ns/B = 20 GB/s memcpy).
    pub memcpy_per_byte_milli: u64,
    /// Serializing/deserializing structured data, per byte.
    pub serialize_per_byte_milli: u64,

    // ---- LCI library ----
    /// Entry overhead of posting any LCI operation (sendm/sendl/put/recv).
    pub lci_op: u64,
    /// One progress-engine poll that finds nothing.
    pub lci_progress_empty: u64,
    /// Progress-engine handling of one arrived packet (decode + route).
    pub lci_packet_handle: u64,
    /// Pushing an entry onto an LCI completion queue.
    pub lci_cq_push: u64,
    /// Popping an LCI completion queue (success or failure).
    pub lci_cq_pop: u64,
    /// Inserting a posted receive into the matching table.
    pub lci_match_insert: u64,
    /// Searching the matching table for one arrived send.
    pub lci_match_lookup: u64,
    /// Handling an unexpected message (no matching receive posted yet).
    pub lci_unexpected: u64,
    /// Signaling a synchronizer (producer side).
    pub lci_sync_signal: u64,
    /// Testing a synchronizer (consumer side), per test.
    pub lci_sync_test: u64,
    /// Handling one rendezvous control message (RTS/RTR/FIN).
    pub lci_rdv_ctrl: u64,
    /// Re-warming the progress engine's working set when a different
    /// core calls `progress` than last time (cache/TLB migration of the
    /// engine state). This is the dominant `pin` vs `mt` penalty: the
    /// pinned progress thread never pays it.
    pub lci_progress_migrate: u64,
    /// Getting/returning a pre-registered packet from the packet pool.
    pub lci_packet_pool: u64,
    /// Allocating a dynamic buffer on the receive side of a `put`.
    pub lci_dyn_alloc: u64,

    // ---- MPI library ----
    /// Entry overhead of any MPI call (`MPI_Isend`, `MPI_Irecv`, `MPI_Test`).
    pub mpi_call: u64,
    /// Time the global progress lock is *held* per progress poll
    /// (the `ucp_progress` critical section).
    pub mpi_progress_hold: u64,
    /// Extra critical-section time per in-flight operation examined.
    pub mpi_progress_per_op: u64,
    /// Base handoff cost of the blocking progress lock when contended.
    pub mpi_lock_handoff: u64,
    /// Additional handoff cost per core already waiting on the lock.
    pub mpi_lock_per_waiter: u64,
    /// Matching one arrived message against the posted-receive list.
    pub mpi_match: u64,
    /// Per-entry cost of scanning the linear unexpected-message queue in
    /// `MPI_Irecv` — the mechanism behind MPI's collapse under many
    /// concurrent messages (Figs. 4, 8, 9).
    pub mpi_unexp_scan: u64,
    /// Buffering an unexpected message (allocation + copy overhead base).
    pub mpi_unexpected: u64,
    /// Engine work per arrived packet handled inside `ucp_progress`.
    pub mpi_handle_packet: u64,
    /// Rendezvous protocol work per control message (registration, RTS/RTR
    /// processing, protocol switch — the paper's "protocol switch in the
    /// MPI/UCX layer").
    pub mpi_rndv: u64,
    /// What-if knob: scale factor (in milli-units, 1000 = x1.0) applied to
    /// the `ucp_progress` lock hold time computed by the MPI communicator.
    /// At the default of 1000 the scaling is integer-exact identity, so
    /// golden traces are unaffected; the causal what-if engine dials it to
    /// emulate finer-grained synchronization inside MPI/UCX.
    pub mpi_lock_hold_scale_milli: u64,

    // ---- TCP stack ----
    /// One socket syscall (send/recv) — user/kernel crossing.
    pub tcp_syscall: u64,
    /// Kernel network-stack work per segment (protocol processing).
    pub tcp_kernel: u64,

    // ---- AMT runtime (mini-HPX) ----
    /// Dispatching a received parcel to its registered action.
    pub amt_action_dispatch: u64,
    /// Fixed overhead of encoding an HPX message (besides per-byte cost).
    pub amt_encode_base: u64,
    /// Per-parcel serialization work while encoding (HPX's C++
    /// serialization of action metadata and small arguments is heavy).
    pub amt_encode_per_parcel: u64,
    /// Fixed overhead of decoding an HPX message.
    pub amt_decode_base: u64,
    /// Per-parcel deserialization work while decoding.
    pub amt_decode_per_parcel: u64,
    /// One operation on the connection cache (spinlock + map lookup).
    pub amt_conncache_op: u64,
    /// One operation on a per-destination parcel queue (spinlock + deque).
    pub amt_parcel_queue_op: u64,
    /// Staging cost per byte (milli-ns) of a zero-copy chunk in the
    /// *aggregated* (non-send-immediate) path: the upper layer cannot
    /// aggregate zero-copy chunks, so large arguments pay extra handling
    /// when routed through the parcel queue (§4.1: "they cannot aggregate
    /// zero-copy chunks while suffering from the additional overhead of
    /// aggregation").
    pub amt_drain_zc_per_byte_milli: u64,
    /// One iteration of the background-work wrapper around a parcelport.
    pub amt_background_work: u64,
    /// Mean extra delay before an idle *worker* thread notices a network
    /// event, relative to a dedicated pinned progress thread that spins on
    /// the NIC. This is the response-time edge of the `pin` variants.
    pub worker_poll_skew: u64,

    // ---- parcelport layer ----
    /// Assembling or decoding a header message.
    pub pp_header: u64,
    /// Creating/retiring a sender or receiver connection object.
    pub pp_connection: u64,
    /// One round-robin scan step over the pending-connection list.
    pub pp_pending_scan: u64,
}

impl CostModel {
    /// Calibrated defaults (see module docs).
    pub fn default_model() -> Self {
        CostModel {
            task_spawn: 300,
            task_schedule: 250,
            idle_poll: 40,
            alloc: 80,
            atomic_op: 20,
            cacheline_transfer: 600,
            memcpy_per_byte_milli: 50,     // 0.05 ns/B
            serialize_per_byte_milli: 250, // 0.25 ns/B
            lci_op: 140,
            lci_progress_empty: 60,
            lci_packet_handle: 700,
            lci_cq_push: 120,
            lci_cq_pop: 60,
            lci_match_insert: 600,
            lci_match_lookup: 800,
            lci_unexpected: 2_200,
            lci_sync_signal: 70,
            lci_sync_test: 160,
            lci_rdv_ctrl: 280,
            lci_progress_migrate: 2_800,
            lci_packet_pool: 60,
            lci_dyn_alloc: 220,
            mpi_call: 50,
            mpi_progress_hold: 60,
            mpi_progress_per_op: 25,
            mpi_lock_handoff: 80,
            mpi_lock_per_waiter: 15,
            mpi_match: 200,
            mpi_unexp_scan: 12,
            mpi_unexpected: 320,
            mpi_handle_packet: 600,
            mpi_rndv: 8_000,
            mpi_lock_hold_scale_milli: 1000,
            tcp_syscall: 2_500,
            tcp_kernel: 4_000,
            amt_action_dispatch: 1_500,
            amt_encode_base: 250,
            amt_encode_per_parcel: 2_500,
            amt_decode_base: 250,
            amt_decode_per_parcel: 2_500,
            amt_conncache_op: 170,
            amt_parcel_queue_op: 210,
            amt_drain_zc_per_byte_milli: 450,
            amt_background_work: 60,
            worker_poll_skew: 2_000,
            pp_header: 150,
            pp_connection: 130,
            pp_pending_scan: 70,
        }
    }

    /// Cost of copying `bytes` bytes.
    #[inline]
    pub fn memcpy(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.memcpy_per_byte_milli) / 1000
    }

    /// Cost of serializing/deserializing `bytes` bytes of structured data.
    #[inline]
    pub fn serialize(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.serialize_per_byte_milli) / 1000
    }

    /// Apply the what-if scale to a `ucp_progress` critical-section
    /// length. Integer-exact identity at the default scale of 1000.
    #[inline]
    pub fn scale_lock_hold(&self, hold_ns: u64) -> u64 {
        (hold_ns * self.mpi_lock_hold_scale_milli) / 1000
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_byte_costs_scale_linearly() {
        let c = CostModel::default_model();
        assert_eq!(c.memcpy(0), 0);
        assert_eq!(c.memcpy(1000), c.memcpy(500) * 2);
        assert!(c.serialize(8192) > c.memcpy(8192), "serialization is dearer than memcpy");
    }

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.atomic_op < c.cacheline_transfer);
        assert!(c.lci_progress_empty < c.lci_packet_handle);
        assert!(c.mpi_lock_per_waiter > 0, "convoy term must exist");
        assert!(c.lci_progress_migrate > c.lci_packet_handle, "migration dwarfs one packet");
    }
}
