//! Causal provenance capture: who scheduled whom, and where the time went.
//!
//! When a collector is installed (see [`install`]), the [`Sim`] records one
//! provenance edge per executed event — *the event that was executing when
//! this event was scheduled* — and the contention primitives
//! ([`crate::SimLock`], [`crate::SimTryLock`], [`crate::SimResource`]) and
//! the network fabric annotate the currently-executing event with labeled
//! time *marks* (lock wait, lock hold, resource service, wire transit).
//! Together these reconstruct the exact critical path of a run: walk the
//! parent chain backwards from any event and carve each inter-event gap
//! with the marks owned by the earlier event.
//!
//! Mirrors [`crate::probe`]: a thread-local optional collector, free
//! functions that no-op (one `Cell<bool>` read) when nothing is installed,
//! and **pure observation** when installed — recording never feeds back
//! into simulation timing.
//!
//! [`Sim`]: crate::Sim

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::time::SimTime;

/// What a time mark represents, for per-component attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// Time spent waiting for a contended primitive (reported as
    /// `"<label>.wait"`).
    Wait,
    /// Time inside a lock's critical section.
    Hold,
    /// CPU service time (resource access, serialization, protocol work).
    Work,
    /// Network transit: injection + wire. `fixed` carries the
    /// bandwidth-independent latency portion.
    Wire,
}

/// One provenance node: an executed event.
#[derive(Debug, Clone, Copy)]
pub struct NodeRec {
    /// Virtual time (ns) at which the event fired.
    pub at: u64,
    /// Node id of the event that scheduled it (0 = scheduled outside any
    /// event, e.g. during setup).
    pub parent: u64,
}

/// One labeled time interval attributed to the event executing when it
/// was recorded.
#[derive(Debug, Clone, Copy)]
pub struct MarkRec {
    /// Owning node id (the event executing when the mark was emitted).
    pub owner: u64,
    /// Component label (lock/resource name, `"net.wire"`, ...).
    pub label: &'static str,
    /// Attribution category.
    pub kind: MarkKind,
    /// Interval start, ns.
    pub start: u64,
    /// Interval end, ns.
    pub end: u64,
    /// Fixed (scale-invariant) portion of the interval, ns — the wire
    /// latency for [`MarkKind::Wire`], 0 otherwise.
    pub fixed: u64,
}

/// Memory guard: stop recording past this many nodes or marks (a run this
/// long is not usefully analyzable anyway; the flag is reported).
const MAX_RECORDS: usize = 1 << 24;

#[derive(Debug)]
struct LogInner {
    /// Node id of `nodes[0]` (node ids are the Sim's 1-based executed
    /// counter; recording may start mid-run).
    base: u64,
    nodes: Vec<NodeRec>,
    marks: Vec<MarkRec>,
    truncated: bool,
}

/// The causal log: provenance nodes + time marks of one instrumented run.
#[derive(Debug)]
pub struct CausalLog {
    inner: RefCell<LogInner>,
}

impl CausalLog {
    /// A fresh, empty log.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Rc<CausalLog> {
        Rc::new(CausalLog {
            inner: RefCell::new(LogInner {
                base: 0,
                nodes: Vec::new(),
                marks: Vec::new(),
                truncated: false,
            }),
        })
    }

    /// Nodes recorded so far.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Marks recorded so far.
    pub fn mark_count(&self) -> usize {
        self.inner.borrow().marks.len()
    }

    /// Whether the memory guard cut recording short.
    pub fn truncated(&self) -> bool {
        self.inner.borrow().truncated
    }

    /// Read access to the raw data: `f(base_node_id, nodes, marks)`.
    /// `nodes[i]` is node id `base + i`.
    pub fn with_data<R>(&self, f: impl FnOnce(u64, &[NodeRec], &[MarkRec]) -> R) -> R {
        let inner = self.inner.borrow();
        f(inner.base, &inner.nodes, &inner.marks)
    }

    fn on_execute(&self, node: u64, at: u64, parent: u64) {
        let mut inner = self.inner.borrow_mut();
        if inner.nodes.is_empty() {
            inner.base = node;
        } else if node != inner.base + inner.nodes.len() as u64 {
            // A different Sim started under the same collector: the old
            // run's graph is complete, restart cleanly for the new one.
            inner.nodes.clear();
            inner.marks.clear();
            inner.base = node;
        }
        if inner.nodes.len() >= MAX_RECORDS {
            inner.truncated = true;
            return;
        }
        inner.nodes.push(NodeRec { at, parent });
    }

    fn mark(
        &self,
        owner: u64,
        label: &'static str,
        kind: MarkKind,
        start: u64,
        end: u64,
        fixed: u64,
    ) {
        let mut inner = self.inner.borrow_mut();
        if inner.marks.len() >= MAX_RECORDS {
            inner.truncated = true;
            return;
        }
        inner.marks.push(MarkRec { owner, label, kind, start, end, fixed });
    }

    /// Drain the log into a plain, `Send` snapshot. Used by the sharded
    /// engine: each worker thread records into its own thread-local log
    /// and ships the data back for a deterministic merge.
    pub fn take_data(&self) -> ShardCausalData {
        let mut inner = self.inner.borrow_mut();
        ShardCausalData {
            base: inner.base,
            nodes: std::mem::take(&mut inner.nodes),
            marks: std::mem::take(&mut inner.marks),
            truncated: inner.truncated,
        }
    }
}

/// A detached, `Send` snapshot of one shard's causal log (node ids are in
/// that shard's namespace: `base + index`).
#[derive(Debug)]
pub struct ShardCausalData {
    /// Node id of `nodes[0]`.
    pub base: u64,
    /// Provenance nodes in execution order.
    pub nodes: Vec<NodeRec>,
    /// Time marks in emission order.
    pub marks: Vec<MarkRec>,
    /// Whether the memory guard cut recording short.
    pub truncated: bool,
}

/// Merge per-shard causal logs into one log with contiguous 1-based node
/// ids, deterministically: nodes are ordered by `(time, original id)` —
/// the original ids carry the shard index in their high bits, so ties at
/// equal times break by shard, matching the engine's canonical merge rule.
/// Parent references (including cross-shard ones) are remapped; a parent
/// that was never recorded (e.g. scheduled before capture began) maps to 0.
pub fn merge_sharded(shards: Vec<ShardCausalData>) -> Rc<CausalLog> {
    merge_sharded_with_remap(shards).0
}

/// [`merge_sharded`], additionally returning the `original gid -> merged
/// 1-based id` map so observers holding raw node ids (e.g. the flow
/// tracer's delivery nodes) can follow the renumbering.
pub fn merge_sharded_with_remap(
    shards: Vec<ShardCausalData>,
) -> (Rc<CausalLog>, std::collections::HashMap<u64, u64>) {
    let truncated = shards.iter().any(|s| s.truncated);
    // (at, original gid, parent gid) for every node, canonically sorted.
    let mut order: Vec<(u64, u64, u64)> = Vec::new();
    for s in &shards {
        for (i, n) in s.nodes.iter().enumerate() {
            order.push((n.at, s.base + i as u64, n.parent));
        }
    }
    order.sort_unstable_by_key(|&(at, gid, _)| (at, gid));
    // Remap original gid -> merged 1-based id.
    let remap: std::collections::HashMap<u64, u64> =
        order.iter().enumerate().map(|(i, &(_, gid, _))| (gid, i as u64 + 1)).collect();
    let nodes: Vec<NodeRec> = order
        .iter()
        .map(|&(at, _, parent)| NodeRec { at, parent: remap.get(&parent).copied().unwrap_or(0) })
        .collect();
    let mut marks: Vec<(u64, MarkRec)> = Vec::new();
    for s in &shards {
        for m in &s.marks {
            if let Some(&owner) = remap.get(&m.owner) {
                marks.push((owner, MarkRec { owner, ..*m }));
            }
        }
    }
    // Canonical mark order: by merged owner, emission order preserved
    // within an owner (stable sort).
    marks.sort_by_key(|&(owner, _)| owner);
    let marks: Vec<MarkRec> = marks.into_iter().map(|(_, m)| m).collect();
    let log =
        Rc::new(CausalLog { inner: RefCell::new(LogInner { base: 1, nodes, marks, truncated }) });
    (log, remap)
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<CausalLog>>> = const { RefCell::new(None) };
    /// Fast-path flag mirroring `ACTIVE.is_some()`: the per-event and
    /// per-mark overhead when no collector is installed is one read here.
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
    /// Node id of the event currently being dispatched (0 outside
    /// dispatch) — the owner of any mark emitted right now.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Install `log` as this thread's causal collector.
pub fn install(log: Rc<CausalLog>) {
    ACTIVE.with(|a| *a.borrow_mut() = Some(log));
    INSTALLED.with(|i| i.set(true));
}

/// Remove the collector (recording stops; no-op if none installed).
pub fn uninstall() {
    ACTIVE.with(|a| *a.borrow_mut() = None);
    INSTALLED.with(|i| i.set(false));
    CURRENT.with(|c| c.set(0));
}

/// Whether a collector is installed.
#[inline]
pub fn installed() -> bool {
    INSTALLED.with(|i| i.get())
}

/// Node id of the event currently being dispatched (0 when idle or when
/// no collector is installed). Lets observers — e.g. the flow tracer —
/// associate their own records with provenance nodes.
#[inline]
pub fn current_node() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Called by the [`Sim`](crate::Sim) as event `node` (its 1-based executed
/// counter) begins dispatch at `at` ns, scheduled by `parent`.
#[inline]
pub fn on_execute(node: u64, at: u64, parent: u64) {
    CURRENT.with(|c| c.set(node));
    ACTIVE.with(|a| {
        if let Some(log) = a.borrow().as_ref() {
            log.on_execute(node, at, parent);
        }
    });
}

/// Called by the [`Sim`](crate::Sim) when dispatch of the current event
/// finishes.
#[inline]
pub fn end_execute() {
    CURRENT.with(|c| c.set(0));
}

/// Record a labeled time interval `[start, end]` attributed to the
/// currently executing event. No-op when no collector is installed, when
/// emitted outside event dispatch, or when the interval is empty.
#[inline]
pub fn mark(label: &'static str, kind: MarkKind, start: SimTime, end: SimTime, fixed: u64) {
    if !installed() {
        return;
    }
    let owner = current_node();
    if owner == 0 || end <= start {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(log) = a.borrow().as_ref() {
            log.mark(owner, label, kind, start.as_nanos(), end.as_nanos(), fixed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collector_is_inert() {
        uninstall();
        assert!(!installed());
        assert_eq!(current_node(), 0);
        // Must not panic or record anywhere.
        mark("x", MarkKind::Work, SimTime::ZERO, SimTime::from_nanos(10), 0);
    }

    #[test]
    fn records_nodes_and_marks() {
        let log = CausalLog::new();
        install(log.clone());
        on_execute(1, 100, 0);
        mark("lock", MarkKind::Hold, SimTime::from_nanos(100), SimTime::from_nanos(150), 0);
        on_execute(2, 200, 1);
        end_execute();
        // Outside dispatch: dropped.
        mark("late", MarkKind::Work, SimTime::from_nanos(200), SimTime::from_nanos(300), 0);
        // Empty interval: dropped.
        on_execute(3, 300, 2);
        mark("empty", MarkKind::Work, SimTime::from_nanos(300), SimTime::from_nanos(300), 0);
        uninstall();
        assert_eq!(log.node_count(), 3);
        assert_eq!(log.mark_count(), 1);
        log.with_data(|base, nodes, marks| {
            assert_eq!(base, 1);
            assert_eq!(nodes[1].parent, 1);
            assert_eq!(marks[0].owner, 1);
            assert_eq!(marks[0].label, "lock");
        });
    }

    #[test]
    fn second_sim_rebases_the_log() {
        let log = CausalLog::new();
        install(log.clone());
        on_execute(1, 10, 0);
        on_execute(2, 20, 1);
        // A fresh Sim's executed counter restarts from 1.
        on_execute(1, 5, 0);
        on_execute(2, 9, 1);
        on_execute(3, 12, 2);
        uninstall();
        assert_eq!(log.node_count(), 3);
        log.with_data(|base, nodes, _| {
            assert_eq!(base, 1);
            assert_eq!(nodes[0].at, 5);
        });
    }
}
