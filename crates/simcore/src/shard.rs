//! The sharded parallel event engine: conservative (Chandy–Misra style)
//! parallel discrete-event simulation with wire-latency lookahead.
//!
//! # Model
//!
//! The single-threaded [`Sim`](crate::Sim) funnels every event through one
//! heap pop loop. This module shards that loop: the workload is split into
//! **lanes** (a lane ≈ one simulated locality: a unit of strictly
//! sequential execution), lanes are assigned to **shards**, and each shard
//! runs its own indexed four-ary heap — on its own OS thread in the
//! threaded executor.
//!
//! Correctness rests on one workload contract, enforced at runtime:
//! events scheduled *across lanes* must fire at least `lookahead`
//! nanoseconds in the future (`at >= now + lookahead`). In the simulated
//! network this is free: a packet handed to the wire is never visible at
//! the destination before one propagation latency has elapsed
//! (`netsim::Fabric::min_lookahead`), which is exactly the null-message
//! lookahead a conservative parallel DES needs. Same-lane scheduling is
//! unrestricted.
//!
//! # Execution: frontiers and the lookahead barrier
//!
//! Shards advance in epochs. At each epoch barrier every shard publishes
//! its **frontier** (the timestamp of its earliest pending event); the
//! epoch window is `min(frontiers) + lookahead`, and every shard then
//! executes all local events strictly before the window end, in parallel.
//! Any cross-shard event produced inside the window fires at
//! `>= now + lookahead >= min(frontiers) + lookahead`, i.e. in a later
//! window — so no shard can receive an event in its past. Cross-shard
//! events travel through per-(source, destination) mailboxes (each mutex
//! touched by exactly one producer and one consumer) drained at the next
//! barrier, before frontiers are recomputed.
//!
//! # Determinism: the canonical merge rule
//!
//! Every event carries the key `(fire_time, scheduling_lane,
//! per-lane sequence)`; shard heaps order by it, and cross-shard arrivals
//! are sorted by it before insertion. Because a lane executes sequentially
//! no matter which shard hosts it, and cross-lane interaction always pays
//! the lookahead, the key is independent of the shard count *and* of
//! thread scheduling: running a workload on 1 shard, on N shards
//! sequentially, or on N shards with real threads yields bit-identical
//! per-lane execution and an identical canonical global order (sort all
//! executed events by `(time, lane, seq)`). The determinism proptests and
//! golden traces pin this.
//!
//! When every lane maps to its own shard the tie-break reduces to
//! `(time, shard_id, seq)` — the per-locality sharding the parcelport
//! simulation uses.
//!
//! # Observability
//!
//! Per-shard [`Stats`], [`Tracer`] spans and causal provenance are
//! captured thread-locally (workers never contend) and merged
//! deterministically after the run ([`Stats::merge`],
//! [`causal::merge_sharded`]). All capture is off by default and costs one
//! branch per event when disabled — the same zero-overhead-when-disabled
//! invariant the single-threaded engine pins.

use std::any::Any;
use std::sync::{Arc, Condvar, Mutex};

use crate::causal::{self, ShardCausalData};
use crate::stats::Stats;
use crate::time::SimTime;
use crate::trace::Tracer;

/// A lane: the unit of sequential execution and of shard placement
/// (≈ one simulated locality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneId(pub u32);

/// Lanes live in the top 20 bits of the packed key; per-lane sequence
/// numbers in the low 44. A run can hold ~1M lanes and ~17.5T events per
/// lane before the packing overflows (both asserted).
const LANE_SHIFT: u32 = 44;
const MAX_LANES: u32 = 1 << 20;
const SEQ_MASK: u64 = (1 << LANE_SHIFT) - 1;

#[inline]
fn pack_key(lane: u32, seq: u64) -> u64 {
    debug_assert!(lane < MAX_LANES && seq <= SEQ_MASK);
    ((lane as u64) << LANE_SHIFT) | seq
}

/// Causal node ids are namespaced per shard the same way: shard index in
/// the high bits, the shard's 1-based executed counter in the low 44.
#[inline]
fn node_gid(shard: u32, local: u64) -> u64 {
    ((shard as u64) << LANE_SHIFT) | local
}

/// A component that owns one lane and receives its typed events.
///
/// Unlike [`EventHandler`](crate::EventHandler) (shared via `Rc`, interior
/// mutability), a shard actor is *owned* by its shard and dispatched with
/// `&mut self` — which is what lets shards move onto OS threads: the actor
/// only has to be `Send`, never `Sync`.
pub trait ShardActor: Send + Any {
    /// An event scheduled for this actor's lane fired at `ctx.now()`.
    fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64);

    /// Downcast support, so tests and harnesses can read actor state back
    /// out of [`ShardedSim::actor`] after a run.
    fn as_any(&self) -> &dyn Any;
}

/// Handle to a pending event on the scheduling lane, as returned by
/// [`LaneCtx::schedule_at`]. Generation-checked like
/// [`EventId`](crate::EventId): stale handles fail `cancel`/`reschedule`
/// instead of touching a recycled slot. Only the scheduling lane may
/// cancel or reschedule (cross-lane events return no handle — they are on
/// another thread's heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEventId {
    slot: u32,
    gen: u32,
}

/// One event crossing a shard boundary, in flight through a mailbox.
#[derive(Debug, Clone, Copy)]
struct RemoteEvent {
    at: SimTime,
    /// Canonical key minted by the *scheduling* lane.
    key: u64,
    /// Destination lane's slot index on its home shard.
    slot: u32,
    arg: u64,
    /// Provenance: causal gid of the scheduling event.
    parent: u64,
}

/// Where a lane lives.
#[derive(Debug, Clone, Copy)]
struct LaneLoc {
    shard: u32,
    slot: u32,
}

// ---------------------------------------------------------------------
// ShardQueue: the per-shard indexed four-ary heap.
// ---------------------------------------------------------------------

const NO_POS: u32 = u32::MAX;

/// One slab slot: `(at, key)` ordering, generation, heap position, payload.
/// Everything is `Copy` — the queue is `Send` by construction, unlike
/// [`EventQueue`](crate::event) whose closure payloads pin it to one
/// thread.
#[derive(Debug, Clone, Copy)]
struct QSlot {
    at: SimTime,
    key: u64,
    lane_slot: u32,
    /// Scheduling lane (cancel/reschedule owner check).
    owner_lane: u32,
    arg: u64,
    parent: u64,
    gen: u32,
    pos: u32,
}

/// A popped, ready-to-dispatch event.
#[derive(Debug, Clone, Copy)]
struct Ready {
    at: SimTime,
    key: u64,
    lane_slot: u32,
    arg: u64,
    parent: u64,
}

/// Indexed four-ary min-heap over `(time, canonical key)` with slab
/// storage and a free list — the same layout as the single-threaded
/// engine's queue, restricted to `Copy` payloads.
#[derive(Debug, Default)]
struct ShardQueue {
    heap: Vec<u32>,
    slots: Vec<QSlot>,
    free: Vec<u32>,
}

impl ShardQueue {
    fn new() -> Self {
        ShardQueue::default()
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    fn key(&self, slot: u32) -> (SimTime, u64) {
        let s = &self.slots[slot as usize];
        (s.at, s.key)
    }

    /// Earliest pending fire time, as raw ns (`u64::MAX` when empty) —
    /// the shard's frontier contribution.
    #[inline]
    fn peek_ns(&self) -> u64 {
        match self.heap.first() {
            Some(&slot) => self.slots[slot as usize].at.as_nanos(),
            None => u64::MAX,
        }
    }

    fn insert(
        &mut self,
        at: SimTime,
        key: u64,
        owner_lane: u32,
        lane_slot: u32,
        arg: u64,
        parent: u64,
    ) -> ShardEventId {
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.at = at;
                s.key = key;
                s.owner_lane = owner_lane;
                s.lane_slot = lane_slot;
                s.arg = arg;
                s.parent = parent;
                slot
            }
            None => {
                self.slots.push(QSlot {
                    at,
                    key,
                    lane_slot,
                    owner_lane,
                    arg,
                    parent,
                    gen: 0,
                    pos: NO_POS,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        ShardEventId { slot, gen: self.slots[slot as usize].gen }
    }

    fn contains(&self, id: ShardEventId) -> bool {
        self.slots.get(id.slot as usize).is_some_and(|s| s.gen == id.gen && s.pos != NO_POS)
    }

    /// The scheduling lane of a pending event (owner check for cancels).
    fn owner(&self, id: ShardEventId) -> Option<u32> {
        if self.contains(id) {
            Some(self.slots[id.slot as usize].owner_lane)
        } else {
            None
        }
    }

    fn cancel(&mut self, id: ShardEventId) -> bool {
        if !self.contains(id) {
            return false;
        }
        let pos = self.slots[id.slot as usize].pos as usize;
        self.remove_at(pos);
        self.release(id.slot);
        true
    }

    fn reschedule(&mut self, id: ShardEventId, at: SimTime, key: u64) -> bool {
        if !self.contains(id) {
            return false;
        }
        {
            let s = &mut self.slots[id.slot as usize];
            s.at = at;
            s.key = key;
        }
        let pos = self.slots[id.slot as usize].pos as usize;
        self.sift_up(pos);
        let pos = self.slots[id.slot as usize].pos as usize;
        self.sift_down(pos);
        true
    }

    /// Pop the earliest event if it fires strictly before `window_end_ns`.
    fn pop_before(&mut self, window_end_ns: u64) -> Option<Ready> {
        let &slot = self.heap.first()?;
        let s = self.slots[slot as usize];
        if s.at.as_nanos() >= window_end_ns {
            return None;
        }
        self.remove_at(0);
        self.release(slot);
        Some(Ready { at: s.at, key: s.key, lane_slot: s.lane_slot, arg: s.arg, parent: s.parent })
    }

    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos < self.heap.len() {
            let moved = self.heap[pos];
            self.slots[moved as usize].pos = pos as u32;
            self.sift_down(pos);
            let now_at = self.slots[moved as usize].pos as usize;
            self.sift_up(now_at);
        }
    }

    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.pos = NO_POS;
        self.free.push(slot);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.key(self.heap[parent]) <= self.key(self.heap[i]) {
                break;
            }
            self.swap_pos(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = 4 * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut min = first;
            let mut min_key = self.key(self.heap[first]);
            for c in first + 1..last {
                let k = self.key(self.heap[c]);
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if self.key(self.heap[i]) <= min_key {
                break;
            }
            self.swap_pos(i, min);
            i = min;
        }
    }

    #[inline]
    fn swap_pos(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].pos = a as u32;
        self.slots[self.heap[b] as usize].pos = b as u32;
    }
}

// ---------------------------------------------------------------------
// Mailboxes: per-(destination, source) SPSC lanes behind light mutexes.
// ---------------------------------------------------------------------

/// Cross-shard mail. `boxes[dst][src]` is touched by exactly two parties
/// — shard `src` pushing during its window, shard `dst` draining at the
/// barrier — and never both at once for a *correct* workload (drains
/// happen with all windows quiesced), so the mutexes are uncontended in
/// steady state; they exist to make the hand-off sound against the
/// barrier's memory ordering rather than to arbitrate real contention.
#[derive(Debug)]
pub(crate) struct Mailboxes {
    boxes: Vec<Vec<Mutex<Vec<RemoteEvent>>>>,
}

impl Mailboxes {
    fn new(shards: usize) -> Self {
        Mailboxes {
            boxes: (0..shards)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
        }
    }

    #[inline]
    fn push(&self, dst: usize, src: usize, ev: RemoteEvent) {
        self.boxes[dst][src].lock().expect("mailbox poisoned").push(ev);
    }

    /// Move every pending event addressed to `dst` into `scratch`
    /// (capacity of both sides is retained — steady state allocates
    /// nothing).
    fn drain_into(&self, dst: usize, scratch: &mut Vec<RemoteEvent>) {
        for src in self.boxes[dst].iter() {
            let mut q = src.lock().expect("mailbox poisoned");
            scratch.append(&mut q);
        }
    }
}

// ---------------------------------------------------------------------
// The epoch barrier.
// ---------------------------------------------------------------------

/// Window sentinel: all frontiers at infinity — the run is over.
const WINDOW_DONE: u64 = u64::MAX;

/// Two-phase sense-reversing barrier with a min-reduction.
///
/// Phase A quiesces execution (after it, every send of the closing window
/// is visible in the mailboxes). Each shard then drains its mail and
/// publishes its frontier into phase B's reduction; the last arrival
/// computes the next window `min(frontiers) + lookahead` and releases
/// everyone. Parking (`Condvar`) rather than spinning: the engine must
/// degrade gracefully when shards outnumber cores.
struct EpochBarrier {
    n: usize,
    lookahead: u64,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    gen: u64,
    min_ns: u64,
    window_ns: u64,
}

impl EpochBarrier {
    fn new(n: usize, lookahead: u64) -> Self {
        EpochBarrier {
            n,
            lookahead,
            state: Mutex::new(BarrierState { arrived: 0, gen: 0, min_ns: u64::MAX, window_ns: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Phase A: wait until every shard has stopped executing its window.
    fn quiesce(&self) {
        let mut st = self.state.lock().expect("barrier poisoned");
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.gen += 1;
            self.cv.notify_all();
        } else {
            let gen = st.gen;
            while st.gen == gen {
                st = self.cv.wait(st).expect("barrier poisoned");
            }
        }
    }

    /// Phase B: publish this shard's frontier; returns the next window end
    /// (exclusive), or `None` when every frontier is at infinity.
    fn next_window(&self, frontier_ns: u64) -> Option<u64> {
        let mut st = self.state.lock().expect("barrier poisoned");
        st.min_ns = st.min_ns.min(frontier_ns);
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.window_ns = if st.min_ns == u64::MAX {
                WINDOW_DONE
            } else {
                st.min_ns.saturating_add(self.lookahead)
            };
            st.min_ns = u64::MAX;
            st.gen += 1;
            self.cv.notify_all();
        } else {
            let gen = st.gen;
            while st.gen == gen {
                st = self.cv.wait(st).expect("barrier poisoned");
            }
        }
        if st.window_ns == WINDOW_DONE {
            None
        } else {
            Some(st.window_ns)
        }
    }
}

// ---------------------------------------------------------------------
// ShardCore: one shard's queue, lanes, clock and capture buffers.
// ---------------------------------------------------------------------

/// One executed-event record, for canonical digests and golden traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRec {
    /// Fire time, ns.
    pub at: u64,
    /// Canonical key `(lane << 44) | lane_seq` of the scheduling lane.
    pub key: u64,
    /// Lane the event fired on.
    pub lane: u32,
    /// Argument word.
    pub arg: u64,
}

struct LaneSlot {
    lane: u32,
    /// Per-lane canonical sequence counter.
    seq: u64,
    actor: Option<Box<dyn ShardActor>>,
}

/// Everything one shard owns. `Send` by construction: moved onto a worker
/// thread by the threaded executor, driven in place by the sequential one.
struct ShardCore {
    shard: u32,
    now: SimTime,
    executed: u64,
    /// Causal gid of the event being dispatched (0 outside dispatch).
    current_gid: u64,
    queue: ShardQueue,
    lanes: Vec<LaneSlot>,
    stats: Stats,
    tracer: Option<Tracer>,
    exec_log: Option<Vec<ExecRec>>,
    causal: Option<ShardCausalData>,
    capture_causal: bool,
    lookahead: u64,
    registry: Arc<Vec<LaneLoc>>,
    mail: Arc<Mailboxes>,
    /// Reused drain buffer (steady state allocates nothing).
    scratch: Vec<RemoteEvent>,
}

// The registry and mailboxes are Sync (immutable / mutex-guarded); actors
// are Send; everything else is owned plain data.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardCore>();
};

impl ShardCore {
    /// Drain inbound mail into the local heap. Arrivals are sorted by the
    /// canonical key before insertion so the heap's internal layout — not
    /// just its pop order — is independent of producer thread timing.
    fn drain_inboxes(&mut self) {
        self.mail.drain_into(self.shard as usize, &mut self.scratch);
        if self.scratch.is_empty() {
            return;
        }
        self.scratch.sort_unstable_by_key(|e| (e.at, e.key));
        for i in 0..self.scratch.len() {
            let e = self.scratch[i];
            let owner = (e.key >> LANE_SHIFT) as u32;
            self.queue.insert(e.at, e.key, owner, e.slot, e.arg, e.parent);
        }
        self.scratch.clear();
    }

    /// Execute every local event firing strictly before `window_end_ns`.
    fn run_window(&mut self, window_end_ns: u64) {
        while let Some(ev) = self.queue.pop_before(window_end_ns) {
            debug_assert!(ev.at >= self.now, "shard time must not go backwards");
            self.now = ev.at;
            self.executed += 1;
            let gid = node_gid(self.shard, self.executed);
            self.current_gid = gid;
            if self.capture_causal {
                causal::on_execute(gid, ev.at.as_nanos(), ev.parent);
            }
            if let Some(log) = &mut self.exec_log {
                log.push(ExecRec {
                    at: ev.at.as_nanos(),
                    key: ev.key,
                    lane: self.lanes[ev.lane_slot as usize].lane,
                    arg: ev.arg,
                });
            }
            // Detach the actor so the dispatch can borrow the core
            // mutably; an actor never addresses itself through the
            // context's lane table, so the hole is unobservable.
            let mut actor = self.lanes[ev.lane_slot as usize]
                .actor
                .take()
                .expect("actor present outside dispatch");
            let mut ctx = LaneCtx { core: self, lane_slot: ev.lane_slot };
            actor.on_event(&mut ctx, ev.arg);
            self.lanes[ev.lane_slot as usize].actor = Some(actor);
            self.current_gid = 0;
            if self.capture_causal {
                causal::end_execute();
            }
        }
    }

    /// Mint the canonical key for the next event scheduled by `lane_slot`.
    #[inline]
    fn next_key(&mut self, lane_slot: u32) -> u64 {
        let slot = &mut self.lanes[lane_slot as usize];
        let seq = slot.seq;
        slot.seq += 1;
        assert!(seq <= SEQ_MASK, "lane {} overflowed its sequence space", slot.lane);
        pack_key(slot.lane, seq)
    }
}

// ---------------------------------------------------------------------
// LaneCtx: what an actor sees during dispatch.
// ---------------------------------------------------------------------

/// Scheduling context handed to [`ShardActor::on_event`]: the dispatching
/// shard's clock, stats and queue, scoped to the firing lane.
pub struct LaneCtx<'a> {
    core: &'a mut ShardCore,
    lane_slot: u32,
}

impl LaneCtx<'_> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The lane this event fired on.
    #[inline]
    pub fn lane(&self) -> LaneId {
        LaneId(self.core.lanes[self.lane_slot as usize].lane)
    }

    /// The shard hosting this lane.
    #[inline]
    pub fn shard(&self) -> usize {
        self.core.shard as usize
    }

    /// The engine's cross-lane lookahead, ns.
    #[inline]
    pub fn lookahead(&self) -> u64 {
        self.core.lookahead
    }

    /// This shard's statistic counters (merged across shards post-run).
    #[inline]
    pub fn stats(&mut self) -> &mut Stats {
        &mut self.core.stats
    }

    /// This shard's span tracer, when tracing is enabled.
    #[inline]
    pub fn tracer(&mut self) -> Option<&mut Tracer> {
        self.core.tracer.as_mut()
    }

    /// Schedule an event on this lane at absolute time `at` (clamped to
    /// `now`). Returns a cancellable handle.
    pub fn schedule_at(&mut self, at: SimTime, arg: u64) -> ShardEventId {
        let at = at.max(self.core.now);
        let key = self.core.next_key(self.lane_slot);
        let lane = self.core.lanes[self.lane_slot as usize].lane;
        self.core.queue.insert(at, key, lane, self.lane_slot, arg, self.core.current_gid)
    }

    /// Schedule an event on this lane `delay_ns` from now.
    pub fn schedule_in(&mut self, delay_ns: u64, arg: u64) -> ShardEventId {
        self.schedule_at(self.core.now + delay_ns, arg)
    }

    /// Send an event to `dest` (possibly on another shard) firing at `at`.
    ///
    /// Cross-lane sends must respect the lookahead: `at >= now +
    /// lookahead`, panicking otherwise — the violation would let a shard
    /// observe an event in its past. The bound is enforced for co-resident
    /// lanes too, so a workload's legality never depends on placement.
    pub fn send(&mut self, dest: LaneId, at: SimTime, arg: u64) {
        let now = self.core.now;
        let my_lane = self.core.lanes[self.lane_slot as usize].lane;
        if dest.0 == my_lane {
            self.schedule_at(at, arg);
            return;
        }
        assert!(
            at >= now + self.core.lookahead,
            "cross-lane send violates conservative lookahead: lane {} -> lane {} at {} < now {} + lookahead {}",
            my_lane,
            dest.0,
            at.as_nanos(),
            now.as_nanos(),
            self.core.lookahead,
        );
        let key = self.core.next_key(self.lane_slot);
        let loc = self.core.registry[dest.0 as usize];
        let parent = self.core.current_gid;
        if loc.shard == self.core.shard {
            self.core.queue.insert(at, key, my_lane, loc.slot, arg, parent);
        } else {
            self.core.mail.push(
                loc.shard as usize,
                self.core.shard as usize,
                RemoteEvent { at, key, slot: loc.slot, arg, parent },
            );
        }
    }

    /// Cancel a pending event scheduled by this lane. Returns `false` on a
    /// stale handle; panics if the event belongs to another lane.
    pub fn cancel(&mut self, id: ShardEventId) -> bool {
        match self.core.queue.owner(id) {
            None => false,
            Some(owner) => {
                let my_lane = self.core.lanes[self.lane_slot as usize].lane;
                assert_eq!(owner, my_lane, "lane {my_lane} cancelling lane {owner}'s event");
                self.core.queue.cancel(id)
            }
        }
    }

    /// Move a pending event of this lane to fire at `at` (clamped to
    /// `now`). Re-keyed as if newly scheduled — identical ordering to
    /// cancel + schedule, without the churn.
    pub fn reschedule(&mut self, id: ShardEventId, at: SimTime) -> bool {
        match self.core.queue.owner(id) {
            None => false,
            Some(owner) => {
                let my_lane = self.core.lanes[self.lane_slot as usize].lane;
                assert_eq!(owner, my_lane, "lane {my_lane} rescheduling lane {owner}'s event");
                let at = at.max(self.core.now);
                let key = self.core.next_key(self.lane_slot);
                self.core.queue.reschedule(id, at, key)
            }
        }
    }
}

// ---------------------------------------------------------------------
// ShardedSim: construction, executors, post-run access.
// ---------------------------------------------------------------------

/// How a run was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// All shards interleaved on the calling thread (same epoch algorithm,
    /// same results).
    Sequential,
    /// One OS thread per shard.
    Threaded,
}

/// What a run did.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Events executed, summed over shards.
    pub executed: u64,
    /// Latest event time across shards (the makespan).
    pub end: SimTime,
    /// Number of epoch windows.
    pub epochs: u64,
    /// Executor used.
    pub mode: RunMode,
}

/// The sharded engine. See the module docs for the execution model.
pub struct ShardedSim {
    cores: Vec<ShardCore>,
    /// Lane -> placement. Snapshotted into an `Arc` shared by the cores at
    /// run start (lanes are added between runs, never during one).
    registry: Vec<LaneLoc>,
    lookahead: u64,
    capture_causal: bool,
}

impl ShardedSim {
    /// Create an engine with `shards` shards and the given conservative
    /// lookahead (ns). The lookahead must be strictly positive: a
    /// zero-lookahead configuration would force lockstep execution (every
    /// window would close immediately), which is exactly the degenerate
    /// case [`netsim`'s positive-latency check] exists to reject.
    pub fn new(shards: usize, lookahead_ns: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            lookahead_ns >= 1,
            "conservative lookahead must be strictly positive: a zero-latency wire would force \
             lockstep execution (no shard could ever run ahead); give the model a latency >= 1ns"
        );
        let mail = Arc::new(Mailboxes::new(shards));
        let cores = (0..shards as u32)
            .map(|shard| ShardCore {
                shard,
                now: SimTime::ZERO,
                executed: 0,
                current_gid: 0,
                queue: ShardQueue::new(),
                lanes: Vec::new(),
                stats: Stats::new(),
                tracer: None,
                exec_log: None,
                causal: None,
                capture_causal: false,
                lookahead: lookahead_ns,
                registry: Arc::new(Vec::new()),
                mail: mail.clone(),
                scratch: Vec::new(),
            })
            .collect();
        ShardedSim { cores, registry: Vec::new(), lookahead: lookahead_ns, capture_causal: false }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// The conservative lookahead, ns.
    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    /// Add an actor as a new lane on `shard`. Returns the lane id.
    pub fn add_actor(&mut self, shard: usize, actor: Box<dyn ShardActor>) -> LaneId {
        assert!(shard < self.cores.len(), "shard {shard} out of range");
        let lane = self.registry.len() as u32;
        assert!(lane < MAX_LANES, "too many lanes");
        let slot = self.cores[shard].lanes.len() as u32;
        self.registry.push(LaneLoc { shard: shard as u32, slot });
        self.cores[shard].lanes.push(LaneSlot { lane, seq: 0, actor: Some(actor) });
        LaneId(lane)
    }

    /// Seed an event for `lane` at absolute time `at` before the run
    /// starts (provenance parent 0, key minted from the lane's counter —
    /// exactly as if the lane scheduled it itself at time zero).
    pub fn seed(&mut self, lane: LaneId, at: SimTime, arg: u64) {
        let loc = self.registry[lane.0 as usize];
        let core = &mut self.cores[loc.shard as usize];
        let key = core.next_key(loc.slot);
        core.queue.insert(at, key, lane.0, loc.slot, arg, 0);
    }

    /// Record every executed event (time, canonical key, lane, arg) for
    /// [`Self::canonical_log`] / [`Self::digest`]. Off by default; one
    /// branch per event when off.
    pub fn set_exec_capture(&mut self, on: bool) {
        for core in &mut self.cores {
            core.exec_log = if on { Some(Vec::new()) } else { None };
        }
    }

    /// Give every shard a span tracer (merged by [`Self::merged_tracer`]).
    pub fn set_tracing(&mut self, on: bool) {
        for core in &mut self.cores {
            core.tracer = if on { Some(Tracer::new()) } else { None };
        }
    }

    /// Capture causal provenance per shard (merged by
    /// [`Self::merged_causal`]). Pure observation: enabling it must not
    /// move any timeline — pinned by the sharded golden traces.
    pub fn set_causal_capture(&mut self, on: bool) {
        self.capture_causal = on;
        for core in &mut self.cores {
            core.capture_causal = on;
        }
    }

    /// Run to completion, choosing the executor: real threads when there
    /// is more than one shard *and* the host has more than one CPU,
    /// otherwise the sequential executor (identical results either way —
    /// that equivalence is what the determinism tests pin).
    pub fn run(&mut self) -> RunReport {
        let parallel = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if self.cores.len() > 1 && parallel > 1 {
            self.run_threaded()
        } else {
            self.run_sequential()
        }
    }

    /// Run every shard interleaved on the calling thread: epochs advance
    /// exactly as in the threaded executor (drain, frontier reduction,
    /// window execution in shard order), without barriers.
    pub fn run_sequential(&mut self) -> RunReport {
        self.sync_registry();
        // Per-shard causal logs live on this thread; installed around each
        // shard's window so the thread-local collector sees one shard's
        // contiguous node ids at a time.
        let logs: Vec<_> = if self.capture_causal {
            self.cores.iter().map(|_| Some(causal::CausalLog::new())).collect()
        } else {
            self.cores.iter().map(|_| None).collect()
        };
        let mut epochs = 0u64;
        loop {
            let mut min_ns = u64::MAX;
            for core in &mut self.cores {
                core.drain_inboxes();
                min_ns = min_ns.min(core.queue.peek_ns());
            }
            if min_ns == u64::MAX {
                break;
            }
            let window = min_ns.saturating_add(self.lookahead);
            epochs += 1;
            for (core, log) in self.cores.iter_mut().zip(&logs) {
                if let Some(log) = log {
                    causal::install(log.clone());
                }
                core.run_window(window);
                if log.is_some() {
                    causal::uninstall();
                }
            }
        }
        for (core, log) in self.cores.iter_mut().zip(logs) {
            if let Some(log) = log {
                core.causal = Some(log.take_data());
            }
        }
        self.report(epochs, RunMode::Sequential)
    }

    /// Run one OS thread per shard with the two-phase lookahead barrier.
    pub fn run_threaded(&mut self) -> RunReport {
        self.sync_registry();
        let n = self.cores.len();
        if n == 1 {
            // One shard: the barrier would synchronize with nobody.
            let mut report = self.run_sequential();
            report.mode = RunMode::Threaded;
            return report;
        }
        let barrier = EpochBarrier::new(n, self.lookahead);
        let epochs = Mutex::new(0u64);
        let mut cores = std::mem::take(&mut self.cores);
        std::thread::scope(|s| {
            let barrier = &barrier;
            let epochs = &epochs;
            let handles: Vec<_> = cores
                .drain(..)
                .map(|mut core| {
                    s.spawn(move || {
                        // Worker-thread-local capture: fresh collector,
                        // zero contention; harvested into the core below.
                        let log = if core.capture_causal {
                            let log = causal::CausalLog::new();
                            causal::install(log.clone());
                            Some(log)
                        } else {
                            None
                        };
                        let mut my_epochs = 0u64;
                        loop {
                            // Phase A: all windows quiesced, mail stable.
                            barrier.quiesce();
                            core.drain_inboxes();
                            // Phase B: frontier reduction -> next window.
                            let Some(window) = barrier.next_window(core.queue.peek_ns()) else {
                                break;
                            };
                            my_epochs += 1;
                            core.run_window(window);
                        }
                        if let Some(log) = log {
                            causal::uninstall();
                            core.causal = Some(log.take_data());
                        }
                        let mut e = epochs.lock().expect("epoch counter poisoned");
                        *e = (*e).max(my_epochs);
                        core
                    })
                })
                .collect();
            for h in handles {
                self.cores.push(h.join().expect("shard worker panicked"));
            }
        });
        // Joining in spawn order keeps `cores[i].shard == i`.
        debug_assert!(self.cores.iter().enumerate().all(|(i, c)| c.shard as usize == i));
        let epochs = *epochs.lock().expect("epoch counter poisoned");
        self.report(epochs, RunMode::Threaded)
    }

    /// Hand every core a snapshot of the lane placement table.
    fn sync_registry(&mut self) {
        let reg = Arc::new(self.registry.clone());
        for core in &mut self.cores {
            core.registry = reg.clone();
        }
    }

    fn report(&self, epochs: u64, mode: RunMode) -> RunReport {
        RunReport {
            executed: self.cores.iter().map(|c| c.executed).sum(),
            end: self.cores.iter().map(|c| c.now).max().unwrap_or(SimTime::ZERO),
            epochs,
            mode,
        }
    }

    /// Events executed, summed over shards.
    pub fn executed(&self) -> u64 {
        self.cores.iter().map(|c| c.executed).sum()
    }

    /// Latest event time across shards.
    pub fn end(&self) -> SimTime {
        self.cores.iter().map(|c| c.now).max().unwrap_or(SimTime::ZERO)
    }

    /// Merged statistics (per-shard bags folded in shard order; merging is
    /// commutative, so the order is a convention, not a dependency).
    pub fn stats(&self) -> Stats {
        let mut out = Stats::new();
        for core in &self.cores {
            out.merge(&core.stats);
        }
        out
    }

    /// One shard's statistics.
    pub fn shard_stats(&self, shard: usize) -> &Stats {
        &self.cores[shard].stats
    }

    /// Borrow an actor back (e.g. to read workload results post-run).
    pub fn actor<T: ShardActor>(&self, lane: LaneId) -> Option<&T> {
        let loc = self.registry.get(lane.0 as usize)?;
        let slot = self.cores[loc.shard as usize].lanes.get(loc.slot as usize)?;
        slot.actor.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// The canonical global execution log: every executed event, sorted by
    /// `(time, lane, lane_seq)`. Identical across shard counts, executors
    /// and thread schedules — the deterministic merge rule made tangible.
    /// Requires [`Self::set_exec_capture`].
    pub fn canonical_log(&self) -> Vec<ExecRec> {
        let mut all: Vec<ExecRec> = Vec::new();
        for core in &self.cores {
            if let Some(log) = &core.exec_log {
                all.extend_from_slice(log);
            }
        }
        all.sort_unstable_by_key(|r| (r.at, r.key));
        all
    }

    /// FNV-1a digest of the canonical execution log.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for r in self.canonical_log() {
            for x in [r.at, r.key, r.lane as u64, r.arg] {
                for b in x.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
            }
        }
        h
    }

    /// Merge per-shard tracers into one (spans in shard order, then
    /// recording order — deterministic). Tracers are left in place.
    pub fn merged_tracer(&self) -> Tracer {
        let mut out = Tracer::new();
        for core in &self.cores {
            if let Some(tr) = &core.tracer {
                for s in tr.spans() {
                    out.span(s.track.clone(), s.label, s.start, s.end);
                }
            }
        }
        out
    }

    /// Merge per-shard causal captures into one contiguous log (see
    /// [`causal::merge_sharded`]). `None` unless causal capture was on.
    pub fn merged_causal(&mut self) -> Option<std::rc::Rc<causal::CausalLog>> {
        if !self.capture_causal {
            return None;
        }
        let shards: Vec<ShardCausalData> =
            self.cores.iter_mut().filter_map(|c| c.causal.take()).collect();
        if shards.is_empty() {
            return None;
        }
        Some(causal::merge_sharded(shards))
    }

    /// Total events still pending across all shard heaps (mailboxes are
    /// empty outside a run).
    pub fn events_pending(&self) -> usize {
        self.cores.iter().map(|c| c.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Ping-pong actor: on every event, bounce to the peer lane one
    /// lookahead (+jitter) ahead, `rounds` times; also exercise a
    /// self-timer that is rescheduled on every bounce.
    struct Pinger {
        peer: LaneId,
        rounds: u64,
        bounces: u64,
        timer: Option<ShardEventId>,
        timer_fired: u64,
        log: Vec<(u64, u64)>,
    }

    const EV_BOUNCE: u64 = 1;
    const EV_TIMER: u64 = 2;

    impl ShardActor for Pinger {
        fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
            self.log.push((ctx.now().as_nanos(), arg));
            match arg {
                EV_BOUNCE => {
                    ctx.stats().bump("bounce");
                    self.bounces += 1;
                    if self.bounces < self.rounds {
                        let jitter = self.bounces % 7;
                        ctx.send(self.peer, ctx.now() + ctx.lookahead() + jitter, EV_BOUNCE);
                    }
                    let deadline = ctx.now() + 10 * ctx.lookahead();
                    let moved = self.timer.map(|t| ctx.reschedule(t, deadline));
                    if moved != Some(true) {
                        self.timer = Some(ctx.schedule_at(deadline, EV_TIMER));
                    }
                }
                EV_TIMER => {
                    self.timer = None;
                    self.timer_fired += 1;
                }
                _ => unreachable!(),
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn pingpong(shards: usize, threaded: bool) -> (u64, u64, Vec<(u64, u64)>, Vec<(u64, u64)>) {
        const L: u64 = 100;
        let mut sim = ShardedSim::new(shards, L);
        sim.set_exec_capture(true);
        let a = LaneId(0);
        let b = LaneId(1);
        let pa =
            Pinger { peer: b, rounds: 50, bounces: 0, timer: None, timer_fired: 0, log: vec![] };
        let pb =
            Pinger { peer: a, rounds: 50, bounces: 0, timer: None, timer_fired: 0, log: vec![] };
        assert_eq!(sim.add_actor(0, Box::new(pa)), a);
        assert_eq!(sim.add_actor(shards.min(2) - 1, Box::new(pb)), b);
        sim.seed(a, SimTime::from_nanos(0), EV_BOUNCE);
        let report = if threaded { sim.run_threaded() } else { sim.run_sequential() };
        assert_eq!(report.executed, sim.executed());
        let la = sim.actor::<Pinger>(a).unwrap().log.clone();
        let lb = sim.actor::<Pinger>(b).unwrap().log.clone();
        (sim.digest(), report.executed, la, lb)
    }

    #[test]
    fn one_vs_two_shards_identical() {
        let (d1, e1, la1, lb1) = pingpong(1, false);
        let (d2, e2, la2, lb2) = pingpong(2, false);
        assert_eq!(e1, e2);
        assert_eq!(d1, d2, "digest must be sharding-independent");
        assert_eq!(la1, la2, "lane A's execution must be sharding-independent");
        assert_eq!(lb1, lb2);
    }

    #[test]
    fn threaded_matches_sequential() {
        let (ds, es, las, lbs) = pingpong(2, false);
        let (dt, et, lat, lbt) = pingpong(2, true);
        assert_eq!(es, et);
        assert_eq!(ds, dt, "digest must be thread-schedule-independent");
        assert_eq!(las, lat);
        assert_eq!(lbs, lbt);
    }

    #[test]
    fn stats_merge_across_shards() {
        const L: u64 = 100;
        let mut sim = ShardedSim::new(2, L);
        let a = LaneId(0);
        let b = LaneId(1);
        sim.add_actor(
            0,
            Box::new(Pinger {
                peer: b,
                rounds: 10,
                bounces: 0,
                timer: None,
                timer_fired: 0,
                log: vec![],
            }),
        );
        sim.add_actor(
            1,
            Box::new(Pinger {
                peer: a,
                rounds: 10,
                bounces: 0,
                timer: None,
                timer_fired: 0,
                log: vec![],
            }),
        );
        sim.seed(a, SimTime::ZERO, EV_BOUNCE);
        sim.run_sequential();
        assert_eq!(sim.stats().get("bounce"), sim.executed() - 2, "timers fired twice");
        assert!(sim.shard_stats(0).get("bounce") > 0);
        assert!(sim.shard_stats(1).get("bounce") > 0);
    }

    #[test]
    #[should_panic(expected = "conservative lookahead")]
    fn cross_lane_send_below_lookahead_panics() {
        struct Bad {
            peer: LaneId,
        }
        impl ShardActor for Bad {
            fn on_event(&mut self, ctx: &mut LaneCtx<'_>, _arg: u64) {
                // One ns short of the lookahead: must panic even though
                // both lanes share a shard.
                let at = SimTime::from_nanos(ctx.now().as_nanos() + ctx.lookahead() - 1);
                ctx.send(self.peer, at, 0);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct Sink;
        impl ShardActor for Sink {
            fn on_event(&mut self, _ctx: &mut LaneCtx<'_>, _arg: u64) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim = ShardedSim::new(1, 50);
        let b = LaneId(1);
        sim.add_actor(0, Box::new(Bad { peer: b }));
        sim.add_actor(0, Box::new(Sink));
        sim.seed(LaneId(0), SimTime::ZERO, 0);
        sim.run_sequential();
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_lookahead_rejected() {
        let _ = ShardedSim::new(2, 0);
    }

    #[test]
    fn cancel_prevents_firing_and_is_deterministic() {
        struct Canceller {
            victim: Option<ShardEventId>,
            fired: Vec<u64>,
        }
        impl ShardActor for Canceller {
            fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
                self.fired.push(arg);
                if arg == 0 {
                    self.victim = Some(ctx.schedule_in(10, 99));
                    ctx.schedule_in(5, 1);
                } else if arg == 1 {
                    let v = self.victim.take().unwrap();
                    assert!(ctx.cancel(v));
                    assert!(!ctx.cancel(v), "stale handle");
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim = ShardedSim::new(2, 1);
        let lane = sim.add_actor(0, Box::new(Canceller { victim: None, fired: vec![] }));
        sim.seed(lane, SimTime::ZERO, 0);
        sim.run_sequential();
        let a = sim.actor::<Canceller>(lane).unwrap();
        assert_eq!(a.fired, vec![0, 1], "cancelled event must not fire");
    }

    #[test]
    fn causal_capture_is_complete_and_pure() {
        // Same workload with and without capture: identical timelines.
        let (d_off, e_off, ..) = pingpong(2, false);
        const L: u64 = 100;
        let mut sim = ShardedSim::new(2, L);
        sim.set_exec_capture(true);
        sim.set_causal_capture(true);
        let a = LaneId(0);
        let b = LaneId(1);
        sim.add_actor(
            0,
            Box::new(Pinger {
                peer: b,
                rounds: 50,
                bounces: 0,
                timer: None,
                timer_fired: 0,
                log: vec![],
            }),
        );
        sim.add_actor(
            1,
            Box::new(Pinger {
                peer: a,
                rounds: 50,
                bounces: 0,
                timer: None,
                timer_fired: 0,
                log: vec![],
            }),
        );
        sim.seed(a, SimTime::ZERO, EV_BOUNCE);
        sim.run_sequential();
        assert_eq!(sim.digest(), d_off, "causal capture moved the timeline");
        assert_eq!(sim.executed(), e_off);
        let log = sim.merged_causal().expect("capture was on");
        assert_eq!(log.node_count() as u64, e_off, "one provenance node per executed event");
        log.with_data(|base, nodes, _marks| {
            assert_eq!(base, 1);
            for (i, n) in nodes.iter().enumerate() {
                assert!(
                    n.parent <= (i as u64),
                    "parent {} of node {} not earlier",
                    n.parent,
                    i + 1
                );
            }
        });
        // Threaded capture merges to the same log shape.
        let mut sim2 = ShardedSim::new(2, L);
        sim2.set_causal_capture(true);
        sim2.add_actor(
            0,
            Box::new(Pinger {
                peer: b,
                rounds: 50,
                bounces: 0,
                timer: None,
                timer_fired: 0,
                log: vec![],
            }),
        );
        sim2.add_actor(
            1,
            Box::new(Pinger {
                peer: a,
                rounds: 50,
                bounces: 0,
                timer: None,
                timer_fired: 0,
                log: vec![],
            }),
        );
        sim2.seed(a, SimTime::ZERO, EV_BOUNCE);
        sim2.run_threaded();
        let log2 = sim2.merged_causal().expect("capture was on");
        assert_eq!(log2.node_count(), log.node_count());
        let flat = |l: &causal::CausalLog| {
            l.with_data(|_, ns, _| ns.iter().map(|n| (n.at, n.parent)).collect::<Vec<_>>())
        };
        assert_eq!(flat(&log2), flat(&log), "merged causal log must be executor-independent");
    }

    #[test]
    fn tracer_merges_in_shard_order() {
        struct Spanner;
        impl ShardActor for Spanner {
            fn on_event(&mut self, ctx: &mut LaneCtx<'_>, _arg: u64) {
                let (now, lane) = (ctx.now(), ctx.lane().0);
                if let Some(tr) = ctx.tracer() {
                    tr.span(format!("lane{lane}"), "work", now, now + 5);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim = ShardedSim::new(2, 1);
        let a = sim.add_actor(0, Box::new(Spanner));
        let b = sim.add_actor(1, Box::new(Spanner));
        sim.set_tracing(true);
        sim.seed(a, SimTime::ZERO, 0);
        sim.seed(b, SimTime::from_nanos(3), 0);
        sim.run_sequential();
        let tr = sim.merged_tracer();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.spans()[0].track, "lane0");
        assert_eq!(tr.spans()[1].track, "lane1");
    }

    #[test]
    fn run_auto_picks_an_executor_and_terminates() {
        static TOTAL: AtomicU64 = AtomicU64::new(0);
        struct Counter {
            left: u64,
        }
        impl ShardActor for Counter {
            fn on_event(&mut self, ctx: &mut LaneCtx<'_>, _arg: u64) {
                TOTAL.fetch_add(1, Ordering::Relaxed);
                if self.left > 0 {
                    self.left -= 1;
                    ctx.schedule_in(7, 0);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim = ShardedSim::new(4, 10);
        for s in 0..4 {
            let lane = sim.add_actor(s, Box::new(Counter { left: 100 }));
            sim.seed(lane, SimTime::ZERO, 0);
        }
        let report = sim.run();
        assert_eq!(report.executed, 4 * 101);
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(report.end, SimTime::from_nanos(700));
        assert!(report.epochs > 0);
    }
}
