//! Execution tracing: record labelled spans of virtual time and export
//! them in the Chrome tracing (`chrome://tracing` / Perfetto) JSON
//! format, with one "thread" per simulated core.
//!
//! Tracing is opt-in and zero-cost when disabled: the recorder is an
//! `Option` the caller owns; hot paths call [`Tracer::span`] only when
//! they hold one.

use std::fmt::Write as _;

use crate::json::escape_json;
use crate::time::SimTime;

/// One recorded span of virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Track (e.g. `loc0/core3`).
    pub track: String,
    /// What ran (e.g. `task`, `lci.progress`, `bg`).
    pub label: &'static str,
    /// Span start (virtual).
    pub start: SimTime,
    /// Span end (virtual).
    pub end: SimTime,
}

/// A span recorder.
#[derive(Debug, Default)]
pub struct Tracer {
    spans: Vec<Span>,
    /// Drop spans shorter than this many ns (noise filter).
    pub min_span_ns: u64,
}

impl Tracer {
    /// Create an empty tracer.
    pub fn new() -> Self {
        Tracer { spans: Vec::new(), min_span_ns: 0 }
    }

    /// Record a span on `track`.
    pub fn span(
        &mut self,
        track: impl Into<String>,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span must not be negative");
        if end.since(start) < self.min_span_ns {
            return;
        }
        self.spans.push(Span { track: track.into(), label, start, end });
    }

    /// Record an instantaneous (zero-length) event on `track`, bypassing
    /// the `min_span_ns` noise filter — alert/fault markers must survive
    /// any filter setting.
    pub fn instant(&mut self, track: impl Into<String>, label: &'static str, t: SimTime) {
        self.spans.push(Span { track: track.into(), label, start: t, end: t });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total virtual time covered per label, descending.
    pub fn totals_by_label(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::HashMap::new();
        for s in &self.spans {
            *map.entry(s.label).or_insert(0u64) += s.end.since(s.start);
        }
        let mut v: Vec<_> = map.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Export as Chrome tracing JSON (`ph: "X"` complete events;
    /// timestamps in microseconds as the format requires).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = s.start.as_nanos() as f64 / 1e3;
            let dur = s.end.since(s.start) as f64 / 1e3;
            write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":0,\"tid\":\"{}\"}}",
                escape_json(s.label),
                escape_json(&s.track)
            )
            .expect("write to string");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut t = Tracer::new();
        t.span("loc0/core0", "task", SimTime::from_nanos(0), SimTime::from_nanos(100));
        t.span("loc0/core1", "bg", SimTime::from_nanos(50), SimTime::from_nanos(80));
        t.span("loc0/core0", "task", SimTime::from_nanos(100), SimTime::from_nanos(150));
        assert_eq!(t.len(), 3);
        let totals = t.totals_by_label();
        assert_eq!(totals[0], ("task", 150));
        assert_eq!(totals[1], ("bg", 30));
    }

    #[test]
    fn min_span_filters_noise() {
        let mut t = Tracer::new();
        t.min_span_ns = 100;
        t.span("x", "tiny", SimTime::ZERO, SimTime::from_nanos(50));
        t.span("x", "big", SimTime::ZERO, SimTime::from_nanos(500));
        assert_eq!(t.len(), 1);
        assert_eq!(t.spans()[0].label, "big");
    }

    #[test]
    fn instant_bypasses_min_span_filter() {
        let mut t = Tracer::new();
        t.min_span_ns = 100;
        t.instant("slo/lat", "alert", SimTime::from_nanos(42));
        assert_eq!(t.len(), 1);
        let s = &t.spans()[0];
        assert_eq!((s.start, s.end), (SimTime::from_nanos(42), SimTime::from_nanos(42)));
        assert!(t.to_chrome_json().contains("\"dur\":0"));
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Tracer::new();
        t.span("loc1/core2", "progress", SimTime::from_micros(3), SimTime::from_micros(5));
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"progress\""));
        assert!(json.contains("\"ts\":3"), "json: {json}");
        assert!(json.contains("\"dur\":2"));
        assert!(json.contains("\"tid\":\"loc1/core2\""));
    }

    #[test]
    fn chrome_json_escapes_tracks_and_labels() {
        let mut t = Tracer::new();
        t.span("track\"with\\quotes", "progress", SimTime::ZERO, SimTime::from_nanos(10));
        let json = t.to_chrome_json();
        assert!(json.contains("\"tid\":\"track\\\"with\\\\quotes\""), "json: {json}");
    }

    #[test]
    fn empty_tracer_valid_json() {
        let t = Tracer::new();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_json(), "[]");
    }
}
