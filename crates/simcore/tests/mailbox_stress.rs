//! Cross-shard mailbox stress: the offline stand-in for a ThreadSanitizer
//! job (tsan needs a nightly `-Zsanitizer` build and loom is not
//! vendored, neither is available in this container). Instead we drive
//! the real engine with real OS threads through a traffic pattern chosen
//! to maximize mailbox pressure — all-to-all sends, bursts landing at
//! identical timestamps, shards outnumbering cores — and require that
//! repeated threaded runs are bit-identical to each other and to the
//! sequential executor. A data race on the mailbox or barrier would show
//! up as a digest/ordering divergence (or a crash) across repetitions.

use std::any::Any;

use simcore::{LaneCtx, LaneId, ShardActor, ShardedSim, SimTime};

const LOOKAHEAD: u64 = 50;

/// Flooder: every event fans out to *every* other lane, always at the
/// minimum legal distance (`now + lookahead`, zero jitter) so bursts from
/// different shards collide at identical timestamps and the deterministic
/// merge rule has to arbitrate constantly.
struct Flooder {
    lanes: Vec<LaneId>,
    budget: u32,
    received: u64,
    checksum: u64,
}

impl ShardActor for Flooder {
    fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
        self.received += 1;
        // Order-sensitive accumulator: any reordering of this lane's
        // delivery stream changes the value.
        self.checksum = self
            .checksum
            .rotate_left(7)
            .wrapping_add(arg ^ ctx.now().as_nanos())
            .wrapping_mul(0x100000001B3);
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let me = ctx.lane();
        let at = ctx.now() + ctx.lookahead();
        for &peer in &self.lanes {
            if peer != me {
                ctx.send(peer, at, arg.wrapping_add(peer.0 as u64) ^ self.received);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// `(digest, executed, per-lane (received, checksum))` of one run.
fn flood(shards: usize, threaded: bool) -> (u64, u64, Vec<(u64, u64)>) {
    const N_LANES: usize = 16;
    let mut sim = ShardedSim::new(shards, LOOKAHEAD);
    sim.set_exec_capture(true);
    let lanes: Vec<LaneId> = (0..N_LANES as u32).map(LaneId).collect();
    for lane in 0..N_LANES {
        sim.add_actor(
            lane % shards,
            Box::new(Flooder { lanes: lanes.clone(), budget: 6, received: 0, checksum: 0 }),
        );
    }
    // Every lane seeded at the same instant: the very first epoch is
    // already an all-to-all mailbox storm.
    for &lane in &lanes {
        sim.seed(lane, SimTime::ZERO, lane.0 as u64);
    }
    let report = if threaded { sim.run_threaded() } else { sim.run_sequential() };
    let per_lane = lanes
        .iter()
        .map(|&l| {
            let f = sim.actor::<Flooder>(l).expect("flooder present");
            (f.received, f.checksum)
        })
        .collect();
    (sim.digest(), report.executed, per_lane)
}

#[test]
fn threaded_floods_are_reproducible_and_match_sequential() {
    for &shards in &[2usize, 4, 8] {
        let baseline = flood(shards, false);
        assert!(baseline.1 > 1_000, "{shards} shards: flood too small ({} events)", baseline.1);
        // More repetitions than cores: exercises both the contended and
        // the oversubscribed (shards > cores) barrier paths.
        for rep in 0..5 {
            let run = flood(shards, true);
            assert_eq!(
                run.0, baseline.0,
                "{shards} shards, rep {rep}: threaded digest diverged from sequential"
            );
            assert_eq!(run.1, baseline.1, "{shards} shards, rep {rep}: executed count diverged");
            assert_eq!(run.2, baseline.2, "{shards} shards, rep {rep}: per-lane streams diverged");
        }
    }
}

#[test]
fn shard_counts_agree_with_each_other() {
    let one = flood(1, false);
    for &shards in &[2usize, 3, 5, 16] {
        let n = flood(shards, false);
        assert_eq!(n.0, one.0, "{shards} shards: digest diverged from 1-shard run");
        assert_eq!(n.2, one.2, "{shards} shards: per-lane streams diverged from 1-shard run");
    }
}
