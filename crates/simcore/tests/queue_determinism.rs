//! The indexed four-ary heap must be observationally identical to a
//! reference lazy-deletion `BinaryHeap`: under arbitrary interleavings
//! of schedule / cancel / reschedule / run, both fire the exact same
//! labels in the exact same order at the exact same virtual times.
//!
//! This is the safety net for the engine rewrite — any divergence in
//! `(time, seq)` tie-breaking between the two implementations shows up
//! here as a firing-order mismatch long before it corrupts a figure.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;
use simcore::{EventId, Sim, SimTime};

/// Reference semantics: a `BinaryHeap` of `(at, seq, label)` with lazy
/// deletion — cancel/reschedule mark the old entry dead and popping
/// skips dead entries. Reschedule inserts afresh with a *new* sequence
/// number, the documented `Sim::reschedule` contract.
#[derive(Default)]
struct Reference {
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// label -> the (at, seq) of its live incarnation, None once fired
    /// or cancelled.
    live: Vec<Option<(u64, u64)>>,
    fired: Vec<(u64, usize)>,
}

impl Reference {
    fn schedule(&mut self, at: u64) -> usize {
        let at = at.max(self.now);
        let label = self.live.len();
        let seq = self.seq;
        self.seq += 1;
        self.live.push(Some((at, seq)));
        self.heap.push(Reverse((at, seq, label)));
        label
    }

    fn cancel(&mut self, label: usize) -> bool {
        self.live[label].take().is_some()
    }

    fn reschedule(&mut self, label: usize, at: u64) -> bool {
        if self.live[label].is_none() {
            return false;
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.live[label] = Some((at, seq));
        self.heap.push(Reverse((at, seq, label)));
        true
    }

    fn run_until(&mut self, deadline: u64) {
        while let Some(&Reverse((at, seq, label))) = self.heap.peek() {
            if at > deadline {
                break;
            }
            self.heap.pop();
            if self.live[label] != Some((at, seq)) {
                continue; // dead (cancelled or rescheduled) entry
            }
            self.live[label] = None;
            self.now = at;
            self.fired.push((at, label));
        }
        self.now = self.now.max(deadline);
    }

    fn run(&mut self) {
        self.run_until(u64::MAX);
    }
}

/// The same op stream applied to the real engine; fired labels are
/// recorded by the scheduled closures themselves.
struct Engine {
    sim: Sim,
    handles: Vec<EventId>,
    fired: Rc<RefCell<Vec<(u64, usize)>>>,
}

impl Engine {
    fn new() -> Self {
        Engine { sim: Sim::new(7), handles: Vec::new(), fired: Rc::new(RefCell::new(Vec::new())) }
    }

    fn schedule(&mut self, at: u64) {
        let label = self.handles.len();
        let fired = self.fired.clone();
        let id = self.sim.schedule_at(SimTime::from_nanos(at), move |sim| {
            fired.borrow_mut().push((sim.now().as_nanos(), label));
        });
        self.handles.push(id);
    }
}

/// One operation, decoded from an arbitrary `(op, label, t)` triple so
/// the vendored proptest's tuple strategies suffice.
fn apply(op: u8, label_raw: u64, t: u64, eng: &mut Engine, reference: &mut Reference) {
    match op % 4 {
        0 => {
            eng.schedule(eng.sim.now().as_nanos() + t);
            reference.schedule(reference.now + t);
        }
        1 | 2 if !eng.handles.is_empty() => {
            let label = (label_raw as usize) % eng.handles.len();
            if op % 4 == 1 {
                let a = eng.sim.cancel(eng.handles[label]);
                let b = reference.cancel(label);
                assert_eq!(a, b, "cancel({label}) liveness diverged");
            } else {
                // Absolute target, possibly in the past — exercises the
                // clamp-to-now path on both sides.
                let a = eng.sim.reschedule(eng.handles[label], SimTime::from_nanos(t));
                let b = reference.reschedule(label, t);
                assert_eq!(a, b, "reschedule({label}) liveness diverged");
            }
        }
        3 => {
            let deadline = eng.sim.now().as_nanos() + t;
            eng.sim.run_until(SimTime::from_nanos(deadline));
            reference.run_until(deadline);
        }
        _ => {}
    }
}

proptest! {
    #[test]
    fn indexed_heap_matches_reference_binary_heap(
        ops in vec((any::<u8>(), any::<u64>(), 0u64..5_000), 0..200)
    ) {
        let mut eng = Engine::new();
        let mut reference = Reference::default();
        for (op, label_raw, t) in ops {
            apply(op, label_raw, t, &mut eng, &mut reference);
            prop_assert_eq!(eng.sim.now().as_nanos(), reference.now);
        }
        eng.sim.run();
        reference.run();
        let fired = eng.fired.borrow().clone();
        prop_assert_eq!(fired, reference.fired);
        prop_assert_eq!(eng.sim.events_pending(), 0);
    }

    #[test]
    fn is_scheduled_tracks_reference_liveness(
        ops in vec((any::<u8>(), any::<u64>(), 0u64..5_000), 0..120)
    ) {
        let mut eng = Engine::new();
        let mut reference = Reference::default();
        for (op, label_raw, t) in ops {
            apply(op, label_raw, t, &mut eng, &mut reference);
            for (label, id) in eng.handles.iter().enumerate() {
                prop_assert_eq!(
                    eng.sim.is_scheduled(*id),
                    reference.live[label].is_some(),
                    "label {} liveness diverged", label
                );
            }
        }
    }
}
