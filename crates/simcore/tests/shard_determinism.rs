//! Sharding must be unobservable: any workload run on 1 shard, on N
//! shards sequentially, or on N shards with real OS threads has to
//! produce the identical canonical event ordering, digest, and per-actor
//! history. This is the parallel-engine counterpart of
//! `queue_determinism.rs` — instead of comparing one heap against a
//! reference heap, it compares *placements* of the same workload against
//! each other under arbitrary schedule / cancel / reschedule / send
//! programs.
//!
//! The engine's invariant under test (see `simcore::shard` docs): events
//! are keyed `(time, scheduling lane, per-lane seq)`, cross-lane sends
//! always pay the lookahead, so the canonical order never depends on how
//! lanes map to shards or on thread scheduling.

use std::any::Any;

use proptest::collection::vec;
use proptest::prelude::*;
use simcore::{LaneCtx, LaneId, ShardActor, ShardEventId, ShardedSim, SimTime};

const LOOKAHEAD: u64 = 100;

/// A deterministic self-driving actor: every event advances a private
/// xorshift RNG and performs one pseudo-random action (local schedule,
/// cross-lane send, cancel, reschedule). The action stream depends only
/// on the actor's seed and its own event history — never on placement —
/// which is exactly what a correct engine must preserve.
struct Worker {
    lanes: Vec<LaneId>,
    rng: u64,
    /// Events this actor may still create (terminates the run).
    budget: u32,
    pending: Vec<ShardEventId>,
    /// Everything observed: `(virtual time, arg)` per delivered event.
    history: Vec<(u64, u64)>,
}

impl Worker {
    fn new(seed: u64, lane: u32, budget: u32, lanes: Vec<LaneId>) -> Self {
        Worker {
            lanes,
            rng: seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1)),
            budget,
            pending: Vec::new(),
            history: Vec::new(),
        }
    }

    fn next(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl ShardActor for Worker {
    fn on_event(&mut self, ctx: &mut LaneCtx<'_>, arg: u64) {
        self.history.push((ctx.now().as_nanos(), arg));
        ctx.stats().bump("delivered");
        // Up to two actions per event keeps the run lively but finite.
        for _ in 0..2 {
            if self.budget == 0 {
                break;
            }
            let r = self.next();
            match r % 5 {
                0 | 1 => {
                    // Local schedule, possibly at `now` (ties exercise the
                    // canonical key ordering).
                    self.budget -= 1;
                    let id = ctx.schedule_in(r >> 8 & 63, r);
                    self.pending.push(id);
                }
                2 => {
                    // Cross-lane send at exactly lookahead + jitter.
                    self.budget -= 1;
                    let peer = self.lanes[(r as usize >> 16) % self.lanes.len()];
                    let at = ctx.now() + ctx.lookahead() + (r >> 8 & 31);
                    ctx.send(peer, at, r);
                }
                3 => {
                    if !self.pending.is_empty() {
                        let i = (r as usize >> 16) % self.pending.len();
                        let id = self.pending.swap_remove(i);
                        ctx.cancel(id); // false on stale handles: fine
                    }
                }
                _ => {
                    if !self.pending.is_empty() {
                        let i = (r as usize >> 16) % self.pending.len();
                        let at = ctx.now() + (r >> 8 & 127);
                        ctx.reschedule(self.pending[i], at);
                    }
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Outcome of one placement: canonical digest plus per-lane histories and
/// merged stats — everything an observer could compare.
struct Outcome {
    digest: u64,
    executed: u64,
    end_ns: u64,
    histories: Vec<Vec<(u64, u64)>>,
    delivered: u64,
}

/// Run the seeded workload with `n_lanes` actors placed round-robin over
/// `shards` shards.
fn run_workload(seed: u64, n_lanes: usize, budget: u32, shards: usize, threaded: bool) -> Outcome {
    let mut sim = ShardedSim::new(shards, LOOKAHEAD);
    sim.set_exec_capture(true);
    let lanes: Vec<LaneId> = (0..n_lanes as u32).map(LaneId).collect();
    for lane in 0..n_lanes {
        let w = Worker::new(seed, lane as u32, budget, lanes.clone());
        let got = sim.add_actor(lane % shards, Box::new(w));
        assert_eq!(got, lanes[lane]);
    }
    for &lane in &lanes {
        sim.seed(lane, SimTime::from_nanos(lane.0 as u64 % 3), lane.0 as u64);
    }
    let report = if threaded { sim.run_threaded() } else { sim.run_sequential() };
    assert_eq!(sim.events_pending(), 0, "run must drain every event");
    Outcome {
        digest: sim.digest(),
        executed: report.executed,
        end_ns: report.end.as_nanos(),
        histories: lanes
            .iter()
            .map(|&l| sim.actor::<Worker>(l).expect("worker present").history.clone())
            .collect(),
        delivered: sim.stats().get("delivered"),
    }
}

fn assert_same(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.executed, b.executed, "{what}: executed count diverged");
    assert_eq!(a.end_ns, b.end_ns, "{what}: makespan diverged");
    assert_eq!(a.digest, b.digest, "{what}: canonical digest diverged");
    assert_eq!(a.histories, b.histories, "{what}: per-actor histories diverged");
    assert_eq!(a.delivered, b.delivered, "{what}: merged stats diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary workloads: 1 shard vs N shards (sequential) vs N shards
    /// (threaded) are indistinguishable.
    #[test]
    fn sharding_is_unobservable(
        seed in any::<u64>(),
        n_lanes in 1usize..6,
        budget in 1u32..40,
        shards in 2usize..5,
        extra in vec(any::<u64>(), 0..4),
    ) {
        // Fold optional entropy into the seed so shrinking explores
        // structurally different workloads, not just smaller ones.
        let seed = extra.iter().fold(seed, |s, e| s.rotate_left(9) ^ e);
        let one = run_workload(seed, n_lanes, budget, 1, false);
        prop_assert!(one.executed >= n_lanes as u64, "every seed event runs");
        let n_seq = run_workload(seed, n_lanes, budget, shards, false);
        assert_same(&one, &n_seq, "1 shard vs N shards sequential");
        let n_thr = run_workload(seed, n_lanes, budget, shards, true);
        assert_same(&one, &n_thr, "1 shard vs N shards threaded");
    }
}

/// CI hook: `SHARDS=k cargo test -p simcore --test shard_determinism`
/// pins a fixed, larger workload at a configurable shard count against
/// its 1-shard canonical run (the workflow exercises k = 2 and 4).
#[test]
fn fixed_workload_matches_at_env_shard_count() {
    let shards: usize = std::env::var("SHARDS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    assert!(shards >= 1, "SHARDS must be >= 1");
    let one = run_workload(0xDEAD_BEEF_CAFE_F00D, 8, 120, 1, false);
    let n_seq = run_workload(0xDEAD_BEEF_CAFE_F00D, 8, 120, shards, false);
    assert_same(&one, &n_seq, "sequential at SHARDS");
    let n_thr = run_workload(0xDEAD_BEEF_CAFE_F00D, 8, 120, shards, true);
    assert_same(&one, &n_thr, "threaded at SHARDS");
    assert!(one.executed > 500, "fixed workload should be non-trivial, got {}", one.executed);
}
