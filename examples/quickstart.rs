//! Quickstart: bring up a two-locality world on the default (best) LCI
//! parcelport, register an action, invoke it remotely, and read the
//! runtime statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use hpx_lci_repro::amt::action::ActionRegistry;
use hpx_lci_repro::parcelport::{build_world, WorldConfig};

fn main() {
    // 1. Register actions — like HPX, every locality shares the registry.
    let mut registry = ActionRegistry::new();
    let greetings = Rc::new(Cell::new(0u32));
    let g = greetings.clone();
    registry.register("greet", move |sim, loc, _core, parcel| {
        let name = String::from_utf8_lossy(&parcel.args[0]).to_string();
        println!(
            "[{}] locality {} got: \"{name}\" ({} bytes)",
            sim.now(),
            loc.id,
            parcel.args[0].len()
        );
        g.set(g.get() + 1);
        sim.now() + 500 // the handler charges 500ns of virtual work
    });
    let greet = registry.id_of("greet").unwrap();

    // 2. Build the world: two simulated nodes with 8 cores each, wired by
    //    a simulated HDR InfiniBand fabric, running the paper's default
    //    configuration (lci_psr_cq_pin_i). Any Table-1 name works here:
    //    "mpi", "mpi_i", "lci_sr_sy_mt_i", ...
    let cfg = WorldConfig::two_nodes("lci_psr_cq_pin_i".parse().unwrap(), 8);
    let mut world = build_world(&cfg, registry);

    // 3. Spawn a task on locality 0 that invokes the action on locality 1.
    let loc0 = world.locality(0).clone();
    for i in 0..3 {
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let msg = format!("hello #{i} from locality 0");
                loc.send_action(sim, core, 1, greet, vec![Bytes::from(msg.into_bytes())])
            }),
        );
    }

    // 4. Run the simulation until it quiesces.
    let g = greetings.clone();
    world.run_while(1_000_000_000, move |_| g.get() < 3);
    println!();
    println!("delivered {} greetings in {} of virtual time", greetings.get(), world.sim.now());
    println!();
    println!("--- runtime statistics ---");
    print!("{}", world.sim.stats);
}
