//! Parcelport shootout: compare every Table-1 configuration on a quick
//! message-rate and latency workload — the decision chart a downstream
//! user would consult before picking a backend.
//!
//! Run with: `cargo run --release --example parcelport_shootout`

use bench_workloads::{quick_latency, quick_rate};
use hpx_lci_repro::parcelport::PpConfig;

/// Minimal inline re-implementations of the bench crate's workloads so
/// the example is self-contained against the public API.
mod bench_workloads {
    use std::cell::Cell;
    use std::rc::Rc;

    use bytes::Bytes;
    use hpx_lci_repro::amt::action::ActionRegistry;
    use hpx_lci_repro::parcelport::{build_world, PpConfig, WorldConfig};

    /// Unlimited-injection message rate of `total` messages of `size`
    /// bytes, in K msgs/s.
    pub fn quick_rate(cfg: PpConfig, size: usize, total: usize) -> f64 {
        let mut registry = ActionRegistry::new();
        let got = Rc::new(Cell::new(0usize));
        let g = got.clone();
        registry.register("sink", move |sim, _l, _c, _p| {
            g.set(g.get() + 1);
            sim.now() + 150
        });
        let sink = registry.id_of("sink").unwrap();
        let mut world = build_world(&WorldConfig::two_nodes(cfg, 16), registry);
        let loc0 = world.locality(0).clone();
        for _ in 0..total / 50 {
            let payload = Bytes::from(vec![7u8; size]);
            loc0.spawn(
                &mut world.sim,
                0,
                Box::new(move |sim, loc, core| {
                    let mut t = sim.now();
                    for _ in 0..50 {
                        t = loc.send_action(sim, core, 1, sink, vec![payload.clone()]);
                    }
                    t
                }),
            );
        }
        let g = got.clone();
        world.run_while(60_000_000_000, move |_| g.get() < total);
        total as f64 / world.sim.now().as_secs_f64() / 1e3
    }

    /// One-way ping-pong latency (us) of `size`-byte messages.
    pub fn quick_latency(cfg: PpConfig, size: usize, steps: usize) -> f64 {
        let mut registry = ActionRegistry::new();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        registry.register("ping", move |sim, loc, core, p| {
            let hops = u64::from_le_bytes(p.args[0][..8].try_into().unwrap());
            if hops == 0 {
                d.set(true);
                return sim.now();
            }
            let peer = 1 - loc.id;
            let size = p.args[0].len();
            let ping = loc.with_registry(|r| r.id_of("ping").unwrap());
            loc.spawn(
                sim,
                core,
                Box::new(move |sim, loc, core| {
                    let mut payload = vec![0u8; size];
                    payload[..8].copy_from_slice(&(hops - 1).to_le_bytes());
                    loc.send_action(sim, core, peer, ping, vec![Bytes::from(payload)])
                }),
            );
            sim.now() + 100
        });
        let ping = registry.id_of("ping").unwrap();
        let mut world = build_world(&WorldConfig::two_nodes(cfg, 16), registry);
        let loc0 = world.locality(0).clone();
        let hops = (2 * steps - 1) as u64;
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut payload = vec![0u8; size.max(8)];
                payload[..8].copy_from_slice(&hops.to_le_bytes());
                loc.send_action(sim, core, 1, ping, vec![Bytes::from(payload)])
            }),
        );
        let d = done.clone();
        world.run_while(60_000_000_000, move |_| !d.get());
        world.sim.now().as_micros_f64() / (2.0 * steps as f64)
    }
}

fn main() {
    println!("{:<20} {:>12} {:>12} {:>12}", "config", "8B K/s", "16K K/s", "8B lat us");
    println!("{}", "-".repeat(60));
    let mut best: Option<(String, f64)> = None;
    let mut configs = PpConfig::paper_set();
    configs.push(PpConfig::tcp());
    for cfg in configs {
        let rate8 = quick_rate(cfg, 8, 20_000);
        let rate16 = quick_rate(cfg, 16 * 1024, 4_000);
        let lat = quick_latency(cfg, 8, 200);
        println!("{:<20} {:>12.1} {:>12.1} {:>12.2}", cfg.to_string(), rate8, rate16, lat);
        if best.as_ref().is_none_or(|(_, b)| rate8 > *b) {
            best = Some((cfg.to_string(), rate8));
        }
    }
    let (name, rate) = best.unwrap();
    println!();
    println!("best small-message throughput: {name} at {rate:.1} K/s");
    println!("(the paper's default, lci_psr_cq_pin_i, should win here)");
}
