//! Irregular-workload example: the communication pattern that motivates
//! asynchronous many-task systems in the paper's introduction — a
//! task-dependency graph with mixed message sizes and bursty, skewed
//! traffic (a sparse-solver-like wavefront).
//!
//! A chain of "panels" is distributed round-robin over four localities;
//! finishing panel `k` releases panel `k+1` (on the next locality) with a
//! small control message, and ships a large data block to a random-ish
//! earlier locality (a trailing update). This mixes tiny latency-bound
//! messages with zero-copy bulk transfers on the same connections — the
//! "multithreaded, irregular, small and large messages" cocktail of §1.
//!
//! Run with: `cargo run --release --example irregular_workload`

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use hpx_lci_repro::amt::action::ActionRegistry;
use hpx_lci_repro::amt::codec::{Reader, Writer};
use hpx_lci_repro::parcelport::{build_world, WorldConfig};

const LOCALITIES: usize = 4;
const PANELS: u64 = 120;
const BLOCK: usize = 24 * 1024; // above the zero-copy threshold

fn main() {
    for cfg in ["mpi_i", "lci_psr_cq_pin_i"] {
        let mut registry = ActionRegistry::new();
        let done = Rc::new(Cell::new(false));
        let blocks = Rc::new(Cell::new(0u64));

        let b = blocks.clone();
        registry.register("trailing_update", move |sim, _loc, _core, p| {
            assert_eq!(p.args[0].len(), BLOCK);
            b.set(b.get() + 1);
            sim.now() + 20_000 // apply the update
        });

        let d = done.clone();
        registry.register("release_panel", move |sim, loc, core, p| {
            let mut r = Reader::new(&p.args[0]);
            let k = r.get_u64();
            let t = sim.now() + 35_000; // factor the panel
            if k + 1 > PANELS {
                d.set(true);
                return t;
            }
            // Release the next panel on the next locality...
            let next_owner = ((k + 1) % LOCALITIES as u64) as usize;
            let release = loc.with_registry(|r| r.id_of("release_panel").unwrap());
            let update = loc.with_registry(|r| r.id_of("trailing_update").unwrap());
            let mut w = Writer::with_capacity(8);
            w.put_u64(k + 1);
            loc.send_action(sim, core, next_owner, release, vec![w.finish()]);
            // ...and ship a bulk trailing update to a deterministic
            // "earlier" locality (irregular target pattern).
            let victim = ((k * 7 + 3) % LOCALITIES as u64) as usize;
            if victim != loc.id {
                loc.send_action(sim, core, victim, update, vec![Bytes::from(vec![k as u8; BLOCK])]);
            }
            t
        });
        let release = registry.id_of("release_panel").unwrap();

        let mut wcfg = WorldConfig::two_nodes(cfg.parse().unwrap(), 8);
        wcfg.localities = LOCALITIES;
        let mut world = build_world(&wcfg, registry);

        let loc0 = world.locality(0).clone();
        loc0.spawn(
            &mut world.sim,
            0,
            Box::new(move |sim, loc, core| {
                let mut w = Writer::with_capacity(8);
                w.put_u64(0);
                loc.send_action(sim, core, 1 % LOCALITIES, release, vec![w.finish()])
            }),
        );

        let d = done.clone();
        let finished = world.run_while(60_000_000_000, move |_| !d.get());
        assert!(finished, "{cfg}: wavefront stalled");
        println!(
            "{cfg:<20} wavefront of {PANELS} panels + {} bulk updates in {}",
            blocks.get(),
            world.sim.now()
        );
    }
    println!();
    println!("The wavefront is latency-bound on its critical path while the bulk");
    println!("updates stress the rendezvous path concurrently — the LCI parcelport's");
    println!("advantage compounds along the chain.");
}
