//! Octo-Tiger mini demo: strong-scale the FMM proxy application across
//! simulated cluster nodes and watch the parcelport choice matter.
//!
//! Run with: `cargo run --release --example octotiger_demo`

use hpx_lci_repro::octotiger_mini::{run_octotiger, OctoParams};

fn main() {
    println!("Octo-Tiger mini: binary-star FMM proxy, 5 steps per run");
    println!();
    println!(
        "{:<8} {:<20} {:>12} {:>10} {:>8}",
        "nodes", "parcelport", "steps/s", "leaves", "mass ok"
    );
    println!("{}", "-".repeat(64));
    for nodes in [2usize, 8, 16] {
        for cfg in ["mpi_i", "lci_psr_cq_pin_i"] {
            let params = OctoParams::expanse(cfg.parse().unwrap(), nodes);
            let r = run_octotiger(&params);
            println!(
                "{:<8} {:<20} {:>12.3} {:>10} {:>8}",
                nodes,
                cfg,
                r.steps_per_sec,
                r.leaves,
                if r.mass_ok { "yes" } else { "NO!" }
            );
            assert!(r.completed, "run did not complete");
            assert!(r.mass_ok, "mass conservation violated — physics broken");
        }
    }
    println!();
    println!("The mass invariant (root multipole == exact leaf-mass sum) holds on");
    println!("every backend: communication never changes the physics, only the speed.");
}
